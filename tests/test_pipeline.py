"""The staged pipeline: stages, memoization, backends, budgets, shims."""

import importlib
import sys
import warnings

import pytest

from repro import SynthesisResult, synthesize_from_state_graph
from repro.bench.suite import load_benchmark, run_pipeline
from repro.pipeline import (
    AnalysisBackend,
    AnalysisContext,
    MCVerdict,
    Pipeline,
    PipelineSpec,
    STAGES,
    available_backends,
    get_backend,
)
from repro.stg.reachability import stg_to_state_graph
from repro.verify.budget import Budget, BudgetExceeded
from repro.verify.differential import diff_state_graph

pytestmark = pytest.mark.smoke


# ----------------------------------------------------------------------
# Backends registry
# ----------------------------------------------------------------------
class TestBackends:
    def test_both_builtins_registered(self):
        assert list(available_backends()) == ["bitengine", "reference", "wordlane"]

    def test_get_backend_by_name_and_default(self):
        assert get_backend(None).name == "bitengine"
        assert get_backend("reference").name == "reference"

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="bitengine"):
            get_backend("quantum")

    def test_backends_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), AnalysisBackend)

    def test_instance_passthrough(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_backends_agree_on_benchmark(self, fig3):
        """The two analysis worlds must produce identical artifacts."""
        reports = {
            name: Pipeline(AnalysisContext(backend=name))
            .run(fig3, until="mc")
            .report
            for name in available_backends()
        }
        dumps = {name: r.to_json() for name, r in reports.items()}
        assert dumps["bitengine"] == dumps["reference"]


# ----------------------------------------------------------------------
# PipelineSpec
# ----------------------------------------------------------------------
class TestPipelineSpec:
    def test_requires_exactly_one_entry_point(self, fig3):
        with pytest.raises(ValueError, match="exactly one"):
            PipelineSpec()
        with pytest.raises(ValueError, match="exactly one"):
            PipelineSpec(stg=load_benchmark("delement"), sg=fig3)

    def test_name_defaults_to_source_name(self, fig3):
        assert PipelineSpec.from_state_graph(fig3).name == fig3.name
        assert PipelineSpec.from_benchmark("delement").name == "delement"

    def test_unknown_stage_rejected(self, fig3):
        with pytest.raises(ValueError, match="unknown stage"):
            Pipeline().run(fig3, until="synthesis")
        assert STAGES == ("reach", "regions", "mc", "covers", "netlist")


# ----------------------------------------------------------------------
# Stage memoization (the fingerprint chain)
# ----------------------------------------------------------------------
class TestMemoization:
    def test_regions_analyzed_once_per_context(self, fig3):
        """The acceptance criterion: two runs, one region analysis."""
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_state_graph(fig3)
        first = pipeline.run(spec, until="regions")
        second = pipeline.run(spec, until="regions")
        assert first is second
        assert context.cache_hits_by_stage["regions"] == 1
        assert context.cache_misses_by_stage["regions"] == 1

    def test_full_rerun_is_all_hits(self):
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_benchmark("delement")
        pipeline.run(spec)
        misses_after_first = dict(context.cache_misses_by_stage)
        pipeline.run(spec)
        assert context.cache_misses_by_stage == misses_after_first
        assert all(
            context.cache_hits_by_stage.get(stage, 0) >= 1 for stage in STAGES
        )

    def test_style_change_invalidates_exactly_netlist(self):
        """An option feeding only the last stage reuses everything above."""
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_benchmark("delement")
        pipeline.run(spec)
        pipeline.run(spec.with_options(style="RS"))
        assert context.cache_misses_by_stage["netlist"] == 2
        for stage in ("reach", "regions", "mc", "covers"):
            assert context.cache_misses_by_stage[stage] == 1, stage

    def test_unchanged_covers_rekey_to_cached_netlist(self):
        """Content addressing: a covers re-run with a changed option that
        produces the *same* plan fingerprints identically, so the netlist
        stage downstream still hits."""
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_benchmark("delement")
        pipeline.run(spec)
        pipeline.run(spec.with_options(max_models=spec.max_models + 1))
        assert context.cache_misses_by_stage["covers"] == 2
        assert context.cache_misses_by_stage["netlist"] == 1

    def test_structurally_identical_graph_hits(self):
        """Two elaborations of one STG share every stage artifact."""
        stg = load_benchmark("delement")
        context = AnalysisContext()
        pipeline = Pipeline(context)
        pipeline.run(stg_to_state_graph(stg), until="mc")
        pipeline.run(stg_to_state_graph(stg), until="mc")
        assert context.cache_misses_by_stage["mc"] == 1
        assert context.cache_hits_by_stage["mc"] == 1

    def test_mutated_spec_recomputes(self, fig3, fig4):
        """A different specification shares nothing."""
        context = AnalysisContext()
        pipeline = Pipeline(context)
        pipeline.run(fig3, until="mc")
        pipeline.run(fig4, until="mc")
        assert context.cache_misses_by_stage["mc"] == 2
        assert context.cache_hits_by_stage.get("mc", 0) == 0

    def test_backend_keys_the_mc_stage(self, fig3):
        """Same upstream artifacts, different backend: mc recomputes."""
        context = AnalysisContext()
        Pipeline(context).run(fig3, until="mc")
        context.backend = get_backend("reference")
        verdict = Pipeline(context).run(fig3, until="mc")
        assert isinstance(verdict, MCVerdict)
        assert verdict.backend == "reference"
        assert context.cache_misses_by_stage["mc"] == 2
        assert context.cache_misses_by_stage["regions"] == 1

    def test_clear_cache_keeps_counters(self, fig3):
        context = AnalysisContext()
        pipeline = Pipeline(context)
        pipeline.run(fig3, until="regions")
        context.clear_cache()
        pipeline.run(fig3, until="regions")
        assert context.cache_misses_by_stage["regions"] == 2
        assert context.cache_info()["regions"] == (0, 2)


# ----------------------------------------------------------------------
# Budgets: one clock, one state meter (the double-bookkeeping fix)
# ----------------------------------------------------------------------
class TestBudgetSingleCharge:
    def test_nested_pipeline_charges_states_exactly_once(self):
        """Nesting the pipeline inside a verify flow must not double-charge:
        the context's budget is the only meter, charged in the stage that
        does the work and nowhere else."""
        stg = load_benchmark("delement")
        sg = stg_to_state_graph(stg)
        budget = Budget(max_states=10**9)
        budget.charge_states(len(sg.state_list), "specification elaboration")
        context = AnalysisContext(budget=budget)
        result = synthesize_from_state_graph(sg, context=context)
        expected = len(sg.state_list) + len(
            result.hazard_report.circuit_sg.state_list
        )
        assert budget.charged_states == expected
        # a re-run over the same context is pure cache: nothing re-charged
        synthesize_from_state_graph(sg, context=context)
        assert budget.charged_states == expected

    def test_differential_campaign_budget_is_shared(self, fig3):
        """diff_state_graph nests two pipelines (one per backend) inside
        the campaign's budget; the design's states are charged once."""
        budget = Budget(max_states=10**9)
        record = diff_state_graph(fig3, budget=budget, repair=False)
        assert record.agree
        assert budget.charged_states == len(fig3.state_list)

    def test_wallclock_check_trips_in_netlist_stage(self):
        sg = stg_to_state_graph(load_benchmark("delement"))
        context = AnalysisContext(budget=Budget(max_seconds=0.0))
        with pytest.raises(BudgetExceeded, match="speed-independence check"):
            synthesize_from_state_graph(sg, context=context)


# ----------------------------------------------------------------------
# Budget-lowered caps must not poison shared caches
# ----------------------------------------------------------------------
class TestBudgetCapCacheIsolation:
    def test_truncated_hazard_report_is_not_cached(self, tmp_path):
        """A drained budget lowers the hazard-check cap below the spec's
        verify_max_states; the truncated report it produces must not be
        served to later full-budget runs sharing the memo or store."""
        stg = load_benchmark("delement")
        spec = PipelineSpec.from_stg(stg)
        reach_states = len(stg_to_state_graph(stg).state_list)
        memo = {}
        store = str(tmp_path / "store")

        # after elaboration this budget leaves 1 state for the check
        lean = AnalysisContext(
            budget=Budget(max_states=reach_states + 1),
            memo=memo, store=store,
        )
        truncated = Pipeline(lean).run(spec)
        assert truncated.hazard_report.composition.truncated
        assert not truncated.hazard_report.hazard_free

        # a full-budget run over the same caches must recompute, not
        # inherit the truncated verdict
        rich = AnalysisContext(memo=memo, store=store)
        full = Pipeline(rich).run(spec)
        assert not full.hazard_report.composition.truncated
        assert full.hazard_report.hazard_free
        assert rich.cache_misses_by_stage["netlist"] == 1

    def test_lowered_but_sufficient_cap_still_caches(self):
        """When the lowered cap does not actually truncate, the artifact
        is identical to the full-cap one and stays cacheable -- the warm
        path the service's latency gate depends on."""
        stg = load_benchmark("delement")
        spec = PipelineSpec.from_stg(stg)
        memo = {}

        bounded = AnalysisContext(budget=Budget(max_states=50_000), memo=memo)
        first = Pipeline(bounded).run(spec)
        assert not first.hazard_report.composition.truncated

        sharer = AnalysisContext(memo=memo)
        second = Pipeline(sharer).run(spec)
        assert second is first
        assert sharer.cache_hits_by_stage["netlist"] == 1


# ----------------------------------------------------------------------
# JSON round-trips (shared serialization layer)
# ----------------------------------------------------------------------
class TestJsonRoundTrip:
    def test_mc_report_round_trip(self, fig4):
        from repro.core.mc import MCReport, analyze_mc

        report = analyze_mc(fig4)
        data = report.to_json()
        assert MCReport.from_json(data).to_json() == data
        assert data["satisfied"] is False

    def test_synthesis_result_round_trip(self, component_result):
        result = component_result("mutex_free_merge")
        data = result.to_json()
        rebuilt = SynthesisResult.from_json(data)
        assert rebuilt.to_json() == data
        assert rebuilt.hazard_free == result.hazard_free
        assert list(rebuilt.added_signals) == list(result.added_signals)

    def test_pipeline_result_round_trip(self, pipeline):
        from repro.bench.suite import PipelineResult

        result = pipeline("delement", verify=True)
        data = result.to_json()
        rebuilt = PipelineResult.from_json(data)
        assert rebuilt.to_json() == data
        assert rebuilt.row == result.row

    def test_table1_payload_uses_structured_rows(self, pipeline):
        from repro.bench.suite import table1_payload

        result = pipeline("delement", verify=True)
        assert table1_payload([result]) == [result.to_json()]


# ----------------------------------------------------------------------
# Wrappers and deprecation shims
# ----------------------------------------------------------------------
class TestCompatSurface:
    def test_wrapper_output_shape_unchanged(self, component_result):
        result = component_result("mutex_free_merge")
        assert isinstance(result, SynthesisResult)
        assert result.implementation.equations()
        assert result.hazard_report is not None

    def test_run_pipeline_accepts_shared_context(self):
        context = AnalysisContext()
        first = run_pipeline("delement", context=context)
        second = run_pipeline("delement", context=context)
        assert first.row == second.row
        assert context.cache_hits_by_stage["covers"] >= 1

    def test_old_reference_module_warns_once_and_forwards(self):
        sys.modules.pop("repro.verify.reference", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.verify.reference")
        assert [w for w in caught if w.category is DeprecationWarning]
        assert callable(module.analyze_mc_reference)

    def test_verify_package_getattr_warns_and_forwards(self, fig3):
        import repro.verify as verify

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            forwarded = verify.analyze_mc_reference
        assert [w for w in caught if w.category is DeprecationWarning]
        report = forwarded(fig3)
        assert report.satisfied

    def test_verify_package_getattr_unknown_name(self):
        import repro.verify as verify

        with pytest.raises(AttributeError):
            verify.no_such_analysis


# ----------------------------------------------------------------------
# perf.recording scoping
# ----------------------------------------------------------------------
class TestPerfRecording:
    def test_recording_installs_and_restores(self):
        from repro import perf

        outer = perf.active()
        recorder = perf.PerfRecorder()
        with perf.recording(recorder) as active:
            assert active is recorder
            assert perf.active() is recorder
        assert perf.active() is outer

    def test_recording_none_is_noop(self):
        from repro import perf

        before = perf.active()
        with perf.recording(None) as active:
            assert active is None
            assert perf.active() is before

    def test_context_recorder_scoped_to_run(self, fig3):
        from repro import perf

        recorder = perf.PerfRecorder()
        context = AnalysisContext(recorder=recorder)
        Pipeline(context).run(fig3, until="regions")
        assert perf.active() is not recorder
        assert "regions" in recorder.phases
