"""The persistent artifact store: codecs, robustness, LRU, concurrency."""

import json
import os
import subprocess
import sys

import pytest

from repro.pipeline import AnalysisContext, ArtifactStore, Pipeline, PipelineSpec
from repro.pipeline.core import STAGES
from repro.pipeline.serialize import (
    ArtifactCodingError,
    stage_artifact_from_json,
    stage_artifact_to_json,
)

pytestmark = pytest.mark.smoke

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def artifacts():
    """Every stage artifact of one insertion-requiring design."""
    pipeline = Pipeline(AnalysisContext())
    spec = PipelineSpec.from_benchmark("delement")
    return {stage: pipeline.run(spec, until=stage) for stage in STAGES}


# ----------------------------------------------------------------------
# Faithful round-trips per artifact type
# ----------------------------------------------------------------------
class TestStageCodecs:
    @pytest.mark.parametrize("stage", STAGES)
    def test_round_trip_stable(self, artifacts, stage):
        """to_json(from_json(x)) == x, through a real JSON pass."""
        payload = json.loads(
            json.dumps(stage_artifact_to_json(stage, artifacts[stage]))
        )
        loaded = stage_artifact_from_json(stage, payload)
        assert stage_artifact_to_json(stage, loaded) == payload
        assert loaded.fingerprint == artifacts[stage].fingerprint

    def test_reach_round_trip_preserves_graph(self, artifacts):
        from repro.pipeline.artifacts import fingerprint_state_graph

        loaded = stage_artifact_from_json(
            "reach", stage_artifact_to_json("reach", artifacts["reach"])
        )
        assert fingerprint_state_graph(loaded.sg) == fingerprint_state_graph(
            artifacts["reach"].sg
        )

    def test_regions_round_trip_keeps_state_sets(self, artifacts):
        loaded = stage_artifact_from_json(
            "regions", stage_artifact_to_json("regions", artifacts["regions"])
        )
        assert loaded.regions == artifacts["regions"].regions
        assert all(er.states for er in loaded.regions)

    def test_mc_round_trip_keeps_verdicts(self, artifacts):
        loaded = stage_artifact_from_json(
            "mc", stage_artifact_to_json("mc", artifacts["mc"])
        )
        original = artifacts["mc"]
        assert loaded.backend == original.backend
        assert len(loaded.report.verdicts) == len(original.report.verdicts)
        for mine, theirs in zip(loaded.report.verdicts, original.report.verdicts):
            assert mine.er == theirs.er  # ER equality includes states
            assert mine.cfr == theirs.cfr
            assert mine.mc_cube == theirs.mc_cube
            assert mine.group == theirs.group

    def test_covers_round_trip_drives_netlist_stage(self, artifacts):
        """A loaded CoverPlan must rebuild the *identical* netlist."""
        from repro.netlist.io import netlist_to_json
        from repro.netlist.netlist import netlist_from_implementation
        from repro.pipeline.artifacts import fingerprint_netlist
        from repro.netlist.hazards import verify_speed_independence

        loaded = stage_artifact_from_json(
            "covers", stage_artifact_to_json("covers", artifacts["covers"])
        )
        assert loaded.added_signals == artifacts["covers"].added_signals
        assert (
            loaded.implementation.equations()
            == artifacts["covers"].implementation.equations()
        )
        netlist = netlist_from_implementation(loaded.implementation, "C")
        fresh = artifacts["netlist"]
        assert netlist_to_json(netlist) == netlist_to_json(fresh.netlist)
        report = verify_speed_independence(netlist, loaded.sg, max_states=20_000)
        assert (
            fingerprint_netlist(loaded.fingerprint, netlist, report)
            == fresh.fingerprint
        )

    def test_netlist_round_trip_detached_hazard(self, artifacts):
        loaded = stage_artifact_from_json(
            "netlist", stage_artifact_to_json("netlist", artifacts["netlist"])
        )
        fresh = artifacts["netlist"]
        assert loaded.hazard_free == fresh.hazard_free
        # the detached verdict still carries what the CLI/bench read
        assert loaded.hazard_report.netlist is loaded.netlist
        assert not loaded.hazard_report.composition.truncated
        assert "HAZARD-FREE" in loaded.hazard_report.describe()

    def test_unsupported_state_ids_refused(self):
        from repro.pipeline.artifacts import ReachedSG, fingerprint_state_graph
        from repro.sg.graph import SignalEvent, StateGraph

        sg = StateGraph(
            ("a",),
            frozenset(),
            {frozenset({"p"}): (0,), frozenset({"q"}): (1,)},
            [
                (frozenset({"p"}), SignalEvent("a", +1), frozenset({"q"})),
                (frozenset({"q"}), SignalEvent("a", -1), frozenset({"p"})),
            ],
            frozenset({"p"}),
            name="frozenset-states",
        )
        artifact = ReachedSG(
            sg=sg, fingerprint=fingerprint_state_graph(sg)
        )
        with pytest.raises(ArtifactCodingError):
            stage_artifact_to_json("reach", artifact)


# ----------------------------------------------------------------------
# The store: hits, misses, corruption, eviction, sharing
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_cold_then_warm(self, tmp_path):
        root = str(tmp_path / "store")
        spec = PipelineSpec.from_benchmark("delement")

        cold = AnalysisContext(store=root)
        first = Pipeline(cold).run(spec, until="netlist")
        assert cold.store.totals() == {
            "hit": 0, "miss": 5, "corrupt": 0, "put": 5, "skip": 0, "evict": 0,
        }

        warm = AnalysisContext(store=root)
        second = Pipeline(warm).run(spec, until="netlist")
        totals = warm.store.totals()
        assert totals["miss"] == 0 and totals["hit"] == 5
        assert second.fingerprint == first.fingerprint
        assert second.hazard_free

    def test_store_instance_accepted(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        context = AnalysisContext(store=store)
        assert context.store is store

    def test_corrupted_entry_is_miss_and_removed(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path / "store"))
        key = ("fp", "bitengine")
        assert store.put("mc", key, artifacts["mc"])
        path = store.path_for("mc", key)
        with open(path, "w") as handle:
            handle.write('{"schema": "repro-artifact-store/1", "trunc')
        assert store.get("mc", key) is None
        assert not os.path.exists(path)
        assert store.stats()["corrupt"] == {"mc": 1}

    def test_truncated_payload_is_miss(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path / "store"))
        key = ("fp",)
        assert store.put("reach", key, artifacts["reach"])
        path = store.path_for("reach", key)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.get("reach", key) is None

    def test_foreign_schema_is_miss(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path / "store"))
        key = ("fp",)
        store.put("reach", key, artifacts["reach"])
        path = store.path_for("reach", key)
        entry = json.load(open(path))
        entry["schema"] = "somebody-else/9"
        json.dump(entry, open(path, "w"))
        assert store.get("reach", key) is None

    def test_old_envelope_version_degrades_to_counted_miss(
        self, tmp_path, artifacts
    ):
        """A ``/1`` entry (pre-compiled-IR cubes) is a corrupt miss, not a
        crash, and the slot is rewritten on the next put."""
        store = ArtifactStore(str(tmp_path / "store"))
        key = ("fp",)
        store.put("reach", key, artifacts["reach"])
        path = store.path_for("reach", key)
        entry = json.load(open(path))
        entry["schema"] = "repro-artifact-store/1"
        json.dump(entry, open(path, "w"))
        assert store.get("reach", key) is None
        assert store.stats()["corrupt"] == {"reach": 1}
        assert store.stats()["miss"] == {"reach": 1}
        # the defective entry was discarded; a fresh put repopulates it
        assert not os.path.exists(path)
        assert store.put("reach", key, artifacts["reach"])
        assert store.get("reach", key) is not None

    def test_key_mismatch_is_miss(self, tmp_path, artifacts):
        """A colliding/moved file never answers for the wrong key."""
        store = ArtifactStore(str(tmp_path / "store"))
        store.put("reach", ("fp-a",), artifacts["reach"])
        os.replace(
            store.path_for("reach", ("fp-a",)),
            store.path_for("reach", ("fp-b",)),
        )
        assert store.get("reach", ("fp-b",)) is None

    def test_unsupported_artifact_skipped_not_crash(self, tmp_path):
        """Uncodeable state ids: the artifact stays memory-only."""
        from repro.pipeline.artifacts import ReachedSG
        from repro.sg.graph import SignalEvent, StateGraph

        sg = StateGraph(
            ("a",),
            frozenset(),
            {frozenset({"p"}): (0,), frozenset({"q"}): (1,)},
            [
                (frozenset({"p"}), SignalEvent("a", +1), frozenset({"q"})),
                (frozenset({"q"}), SignalEvent("a", -1), frozenset({"p"})),
            ],
            frozenset({"p"}),
            name="frozenset-states",
        )
        store = ArtifactStore(str(tmp_path / "store"))
        assert store.put("reach", ("k",), ReachedSG(sg=sg)) is False
        assert store.stats()["skip"] == {"reach": 1}
        assert len(store) == 0

    def test_eviction_is_lru(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path / "store"), max_entries=2)
        reach = artifacts["reach"]
        store.put("reach", ("a",), reach)
        os.utime(store.path_for("reach", ("a",)), (1, 1))
        store.put("reach", ("b",), reach)
        os.utime(store.path_for("reach", ("b",)), (2, 2))
        # touching "a" via get makes "b" the LRU victim
        assert store.get("reach", ("a",)) is not None
        store.put("reach", ("c",), reach)
        assert store.get("reach", ("b",)) is None  # evicted
        assert store.get("reach", ("a",)) is not None
        assert store.get("reach", ("c",)) is not None
        assert store.stats()["evict"] == {"reach": 1}

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            ArtifactStore(str(tmp_path), max_entries=0)

    def test_concurrent_writers_same_key(self, tmp_path):
        """Two processes racing on one key both leave a valid entry."""
        root = str(tmp_path / "store")
        script = (
            "import sys\n"
            "from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec\n"
            "ctx = AnalysisContext(store=sys.argv[1])\n"
            "Pipeline(ctx).run("
            "PipelineSpec.from_benchmark('delement'), until='netlist')\n"
        )
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        procs = [
            subprocess.Popen([sys.executable, "-c", script, root], env=env)
            for _ in range(2)
        ]
        assert [proc.wait() for proc in procs] == [0, 0]
        # the store now answers every stage for a fresh context
        warm = AnalysisContext(store=root)
        Pipeline(warm).run(
            PipelineSpec.from_benchmark("delement"), until="netlist"
        )
        totals = warm.store.totals()
        assert totals["miss"] == 0 and totals["corrupt"] == 0
        assert totals["hit"] == 5

    def test_shared_store_across_differential(self, tmp_path, fig3):
        """diff keys MC per backend: paths stay independent on disk."""
        from repro.verify.differential import diff_state_graph

        root = str(tmp_path / "store")
        record = diff_state_graph(fig3, repair=False, store=root)
        assert not record.mismatches
        store = ArtifactStore(root)
        entries = os.listdir(os.path.join(root, "mc"))
        assert len(entries) == 2  # one verdict per backend
        assert len(store) >= 4
