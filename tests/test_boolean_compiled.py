"""The compiled cube/cover IR: packing, interning, and algebra parity.

The mask-value big-int form (`repro.boolean.compiled`) is the single
representation every layer's hot path runs on; these tests pin its
semantics against the literal-dict reference algebra of `Cube`/`Cover`.
"""

import itertools
import random

import pytest

from repro.boolean.compiled import CompiledCover, CompiledCube, SignalSpace, popcount
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

pytestmark = pytest.mark.smoke

SIGNALS = ("a", "b", "c", "d", "e")


def random_cube(rng, signals=SIGNALS):
    return Cube(
        {
            signal: rng.randint(0, 1)
            for signal in signals
            if rng.random() < 0.6
        }
    )


class TestSignalSpace:
    def test_interned_identity(self):
        assert SignalSpace.of(SIGNALS) is SignalSpace.of(list(SIGNALS))

    def test_different_order_different_space(self):
        assert SignalSpace.of(("a", "b")) is not SignalSpace.of(("b", "a"))

    def test_duplicate_signals_rejected(self):
        with pytest.raises(ValueError):
            SignalSpace.of(("a", "a"))

    def test_pack_unpack_round_trip(self):
        space = SignalSpace.of(SIGNALS)
        for word in range(1 << len(SIGNALS)):
            assert space.pack(space.unpack(word)) == word
            assert space.pack_vector(space.unpack_vector(word)) == word

    def test_pack_bit_positions(self):
        space = SignalSpace.of(SIGNALS)
        assert space.pack({"a": 1, "b": 0, "c": 0, "d": 0, "e": 0}) == 1
        assert space.pack({"a": 0, "b": 0, "c": 0, "d": 0, "e": 1}) == 1 << 4

    def test_membership_and_index(self):
        space = SignalSpace.of(SIGNALS)
        assert "c" in space and "z" not in space
        assert space.index("c") == 2
        assert len(space) == 5


class TestCompiledCubeSemantics:
    space = SignalSpace.of(SIGNALS)

    def test_covers_agrees_with_literal_cube(self):
        rng = random.Random(7)
        for _ in range(200):
            cube = random_cube(rng)
            compiled = cube.compiled(self.space)
            for word in range(1 << len(SIGNALS)):
                code = self.space.unpack(word)
                assert compiled.covers_packed(word) == cube.covers(code)

    def test_universal_and_minterm(self):
        assert CompiledCube.universal(self.space).covers_packed(0b10101)
        minterm = CompiledCube.minterm(self.space, 0b01100)
        assert minterm.covers_packed(0b01100)
        assert not minterm.covers_packed(0b01101)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompiledCube(self.space, 1 << len(SIGNALS), 0)  # outside space
        with pytest.raises(ValueError):
            CompiledCube(self.space, 0b01, 0b10)  # value outside mask

    def test_literal_views_round_trip(self):
        cube = Cube({"a": 1, "c": 0, "e": 1})
        compiled = cube.compiled(self.space)
        assert compiled.to_cube() == cube
        assert dict(compiled.literals) == {"a": 1, "c": 0, "e": 1}
        assert compiled.literal_count() == len(cube) == len(compiled)

    def test_memoised_per_space(self):
        cube = Cube({"a": 1})
        assert cube.compiled(self.space) is cube.compiled(self.space)

    def test_foreign_space_rejected(self):
        other = SignalSpace.of(("x", "y"))
        a = CompiledCube.from_literals(self.space, [("a", 1)])
        x = CompiledCube.from_literals(other, [("x", 1)])
        with pytest.raises(ValueError):
            a.intersect(x)


class TestCompiledCubeAlgebraParity:
    """Word-parallel ops agree with the literal-dict reference algebra."""

    space = SignalSpace.of(SIGNALS)

    def pairs(self, count=300, seed=11):
        rng = random.Random(seed)
        for _ in range(count):
            yield random_cube(rng), random_cube(rng)

    def test_contains(self):
        for a, b in self.pairs():
            assert a.compiled(self.space).contains(
                b.compiled(self.space)
            ) == a.contains(b)

    def test_intersect(self):
        for a, b in self.pairs():
            got = a.compiled(self.space).intersect(b.compiled(self.space))
            want = a.intersect(b)
            if want is None:
                assert got is None
            else:
                assert got is not None and got.to_cube() == want

    def test_supercube(self):
        for a, b in self.pairs():
            got = a.compiled(self.space).supercube(b.compiled(self.space))
            assert got.to_cube() == a.supercube(b)

    def test_distance(self):
        for a, b in self.pairs():
            assert a.compiled(self.space).distance(
                b.compiled(self.space)
            ) == a.distance(b)

    def test_cofactor_semantics(self):
        """cofactor(p, v) covers w iff the cube covers w with bit p := v."""
        rng = random.Random(3)
        for _ in range(50):
            cube = random_cube(rng).compiled(self.space)
            for position, bit_value in itertools.product(range(5), (0, 1)):
                cofactor = cube.cofactor(position, bit_value)
                bit = 1 << position
                for word in range(32):
                    forced = (word | bit) if bit_value else (word & ~bit)
                    covered = cube.covers_packed(forced)
                    if cofactor is None:
                        assert not covered
                    else:
                        assert cofactor.covers_packed(word & ~bit) == covered

    def test_without_positions(self):
        cube = Cube({"a": 1, "b": 0, "c": 1}).compiled(self.space)
        raised = cube.without_positions(0b10)  # drop 'b'
        assert raised.to_cube() == Cube({"a": 1, "c": 1})


class TestCompiledCover:
    space = SignalSpace.of(SIGNALS)

    def test_covers_agrees_with_literal_cover(self):
        rng = random.Random(23)
        for _ in range(60):
            cover = Cover(random_cube(rng) for _ in range(rng.randint(0, 4)))
            compiled = cover.compiled(self.space)
            for word in range(1 << len(SIGNALS)):
                code = self.space.unpack(word)
                assert compiled.covers_packed(word) == cover.covers(code)

    def test_order_preserved_duplicates_dropped(self):
        a = Cube({"a": 1})
        b = Cube({"b": 0})
        compiled = CompiledCover.from_cover(self.space, Cover([a, b, a]))
        assert [c.to_cube() for c in compiled.cubes] == [a, b]

    def test_round_trip_view(self):
        cover = Cover([Cube({"a": 1, "b": 0}), Cube({"c": 1})])
        assert cover.compiled(self.space).to_cover() == cover

    def test_irredundant(self):
        wide = Cube({"a": 1})
        narrow = Cube({"a": 1, "b": 0})
        compiled = CompiledCover.from_cover(self.space, Cover([wide, narrow]))
        kept = compiled.irredundant()
        assert [c.to_cube() for c in kept.cubes] == [wide]

    def test_covering_cubes_and_counters(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 1})]).compiled(self.space)
        word = self.space.pack({"a": 1, "b": 1, "c": 0, "d": 0, "e": 0})
        assert len(cover.covering_cubes(word)) == 2
        assert cover.literal_count() == 2
        assert bool(cover) and not cover.is_empty()

    def test_empty_cover(self):
        empty = CompiledCover(self.space)
        assert empty.is_empty() and not empty.covers_packed(0)
        assert empty.to_cover().is_empty()


class TestPopcount:
    def test_matches_bin_count(self):
        rng = random.Random(1)
        for _ in range(100):
            word = rng.getrandbits(80)
            assert popcount(word) == bin(word).count("1")
