"""The word-lane analysis backend and its uint64 kernels.

Three layers are pinned here:

* kernel parity -- every :class:`NumpyKernel` primitive against the
  dependency-free :class:`PythonKernel` on randomized word-boundary
  crossing inputs;
* engine equivalence -- the ``wordlane`` backend claim-for-claim against
  ``bitengine`` and ``reference`` on the paper's figures and a
  randomized STG sweep, plus a subprocess run with the numpy import
  blocked so the forced fallback is exercised end to end;
* the batched netlist paths -- composition BFS and discrete-event
  simulation with the lane sweep on must be bit-identical to the scalar
  paths.
"""

import json
import os
import random
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.bench.figures import figure3_sg, figure4_sg
from repro.corpus import fuzz_specs
from repro.boolean.compiled import CompiledCover, SignalSpace
from repro.boolean.cube import Cube
from repro.core.synthesis import synthesize
from repro.netlist.circuit_sg import (
    build_circuit_state_graph,
    build_circuit_state_graph_batched,
)
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import simulate
from repro.pipeline.backends import available_backends, get_backend
from repro.pipeline.serialize import mc_report_to_json
from repro.sg import lanes
from repro.sg.lanes import HAVE_NUMPY, get_kernel
from repro.sg.wordlane import LaneEngine, lane_analysis
from repro.stg.reachability import ReachabilityError, stg_to_state_graph

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: every kernel selectable in this interpreter
KERNELS = ("numpy", "python") if HAVE_NUMPY else ("python",)

BACKENDS = ("reference", "bitengine", "wordlane")


def report_blob(backend, sg):
    """The backend's whole-graph MC claim set as canonical JSON."""
    report = get_backend(backend).analyze_mc(sg)
    return json.dumps(mc_report_to_json(report), sort_keys=True)


# ----------------------------------------------------------------------
# kernel parity: numpy vs pure python, primitive by primitive
# ----------------------------------------------------------------------
@needs_numpy
class TestKernelParity:
    NBITS = 150  # crosses two word boundaries

    def setup_method(self):
        self.np_k = get_kernel("numpy")
        self.py_k = get_kernel("python")
        self.rng = random.Random(0xC0FFEE)

    def bitsets(self, count=12):
        yield 0
        yield (1 << self.NBITS) - 1
        for _ in range(count):
            yield self.rng.getrandbits(self.NBITS)

    def test_bitset_word_round_trip(self):
        for bits in self.bitsets():
            for kernel in (self.np_k, self.py_k):
                assert kernel.to_int(kernel.to_words(bits, self.NBITS)) == bits

    def test_indices_and_back(self):
        for bits in self.bitsets():
            np_idx = list(self.np_k.indices(bits, self.NBITS))
            py_idx = self.py_k.indices(bits, self.NBITS)
            assert np_idx == py_idx
            assert self.np_k.bits_from_indices(np_idx, self.NBITS) == bits
            assert self.py_k.bits_from_indices(py_idx, self.NBITS) == bits

    def test_bit_table_both_axes(self):
        rows, cols = 9, 70
        flat = bytes(
            self.rng.randint(0, 1) for _ in range(rows * cols)
        )
        np_rows, np_cols = self.np_k.bit_table(flat, rows, cols)
        py_rows, py_cols = self.py_k.bit_table(flat, rows, cols)
        assert np_rows == py_rows
        assert np_cols == py_cols

    def test_or_table_scatter(self):
        nrows, ncols = 20, self.NBITS
        pairs = [
            (self.rng.randrange(nrows), self.rng.randrange(ncols))
            for _ in range(200)
        ]
        rs = [r for r, _ in pairs]
        cs = [c for _, c in pairs]
        np_mat = self.np_k.or_table(nrows, ncols, rs, cs)
        py_mat = self.py_k.or_table(nrows, ncols, rs, cs)
        assert self.np_k.row_ints(np_mat) == self.py_k.row_ints(py_mat)

    def test_repeat_indices(self):
        counts = [self.rng.randrange(4) for _ in range(10)]
        assert list(self.np_k.repeat_indices(counts)) == self.py_k.repeat_indices(
            counts
        )

    def random_graph(self, n=80, arcs=300):
        srcs = [self.rng.randrange(n) for _ in range(arcs)]
        tgts = [self.rng.randrange(n) for _ in range(arcs)]
        return (
            self.np_k.or_matrix(n, srcs, tgts),
            self.py_k.or_matrix(n, srcs, tgts),
            n,
        )

    def test_row_queries_agree(self):
        np_mat, py_mat, n = self.random_graph()
        for _ in range(20):
            members = self.rng.getrandbits(n)
            target = self.rng.getrandbits(n)
            assert self.np_k.union_rows(np_mat, members, n) == self.py_k.union_rows(
                py_mat, members, n
            )
            assert self.np_k.rows_hitting(
                np_mat, members, target, n
            ) == self.py_k.rows_hitting(py_mat, members, target, n)
            assert self.np_k.first_hit(
                np_mat, members, target, n
            ) == self.py_k.first_hit(py_mat, members, target, n)
            assert self.np_k.any_hit(
                np_mat, members, target, n
            ) == self.py_k.any_hit(py_mat, members, target, n)

    def test_components_agree(self):
        n = 60
        srcs, tgts = [], []
        for _ in range(90):  # symmetric adjacency, like the engine builds
            a, b = self.rng.randrange(n), self.rng.randrange(n)
            srcs += [a, b]
            tgts += [b, a]
        np_adj = self.np_k.or_matrix(n, srcs, tgts)
        py_adj = self.py_k.or_matrix(n, srcs, tgts)
        for _ in range(10):
            subset = self.rng.getrandbits(n)
            assert self.np_k.components(np_adj, subset, n) == self.py_k.components(
                py_adj, subset, n
            )

    def test_match_rows_agree(self):
        width = 90
        codes = [self.rng.getrandbits(width) for _ in range(40)]
        np_rows = self.np_k.pack_code_matrix(codes, width)
        py_rows = self.py_k.pack_code_matrix(codes, width)
        for _ in range(20):
            mask = self.rng.getrandbits(width)
            value = mask & self.rng.getrandbits(width)
            assert self.np_k.match_rows(
                np_rows, mask, value, len(codes)
            ) == self.py_k.match_rows(py_rows, mask, value, len(codes))


# ----------------------------------------------------------------------
# kernel selection, env override, counters
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_default_matches_availability(self):
        expected = "numpy" if HAVE_NUMPY else "python"
        assert get_kernel().name == expected

    def test_explicit_python(self):
        assert get_kernel("python").name == "python"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(lanes.KERNEL_ENV, "python")
        assert get_kernel().name == "python"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            get_kernel("cuda")

    def test_selection_counter_bumps(self):
        before = lanes.KERNEL_SELECTIONS["python"]
        get_kernel("python")
        assert lanes.KERNEL_SELECTIONS["python"] == before + 1

    def test_numpy_request_without_numpy_counts_fallback(self, monkeypatch):
        monkeypatch.setattr(lanes, "_NUMPY_KERNEL", None)
        monkeypatch.setattr(lanes, "HAVE_NUMPY", False)
        before = lanes.KERNEL_SELECTIONS["fallback"]
        assert get_kernel("numpy").name == "python"
        assert lanes.KERNEL_SELECTIONS["fallback"] == before + 1

    def test_selection_visible_in_perf_profile(self):
        from repro import perf

        recorder = perf.PerfRecorder()
        with perf.recording(recorder):
            get_kernel("python")
        assert recorder.as_dict()["counters"]["lane.kernel.python"] >= 1


# ----------------------------------------------------------------------
# engine equivalence: wordlane vs bitengine vs reference
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    def assert_three_way_parity(self, make_sg, label):
        blobs = {b: report_blob(b, make_sg()) for b in BACKENDS}
        assert blobs["wordlane"] == blobs["bitengine"], label
        assert blobs["wordlane"] == blobs["reference"], label

    def test_figure3(self):
        self.assert_three_way_parity(figure3_sg, "figure 3")

    def test_figure4(self):
        self.assert_three_way_parity(figure4_sg, "figure 4")

    @pytest.mark.parametrize("kernel_name", KERNELS)
    def test_kernels_produce_identical_claims(self, kernel_name, monkeypatch):
        monkeypatch.setenv(lanes.KERNEL_ENV, kernel_name)
        self.assert_three_way_parity(figure4_sg, f"kernel {kernel_name}")

    def test_randomized_stg_sweep(self):
        """Claim-for-claim parity across a deterministic fuzz stream."""
        checked = 0
        for name, stg in fuzz_specs(10, seed=20260808):
            graphs = []
            try:
                for _ in BACKENDS:
                    graphs.append(stg_to_state_graph(stg, max_states=4000))
            except ReachabilityError:
                continue  # this design outgrew the test budget
            blobs = {
                backend: report_blob(backend, sg)
                for backend, sg in zip(BACKENDS, graphs)
            }
            assert blobs["wordlane"] == blobs["bitengine"], name
            assert blobs["wordlane"] == blobs["reference"], name
            checked += 1
        assert checked >= 6  # the stream must not degenerate to skips

    def test_lane_analysis_installs_and_reuses_engine(self):
        sg = figure3_sg()
        engine = lane_analysis(sg)
        assert isinstance(engine, LaneEngine)
        assert sg._analysis_cache["bitengine"] is engine
        assert lane_analysis(sg) is engine


class TestForcedFallback:
    def test_wordlane_without_numpy_matches_bitengine(self):
        """Block numpy at import time; the python kernel must agree."""
        script = textwrap.dedent(
            """
            import json
            import sys

            class BlockNumpy:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy blocked by fallback test")
                    return None

            sys.meta_path.insert(0, BlockNumpy())

            from repro.sg import lanes
            assert not lanes.HAVE_NUMPY

            from repro.bench.figures import figure3_sg, figure4_sg
            from repro.pipeline.backends import get_backend
            from repro.pipeline.serialize import mc_report_to_json

            def blob(backend, sg):
                report = get_backend(backend).analyze_mc(sg)
                return json.dumps(mc_report_to_json(report), sort_keys=True)

            for make in (figure3_sg, figure4_sg):
                assert blob("wordlane", make()) == blob("bitengine", make())
            assert lanes.get_kernel().name == "python"
            assert lanes.KERNEL_SELECTIONS["fallback"] >= 1
            print("fallback parity ok")
            """
        )
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_root)
        env.pop(lanes.KERNEL_ENV, None)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback parity ok" in proc.stdout


# ----------------------------------------------------------------------
# CompiledCover lane import/export
# ----------------------------------------------------------------------
class TestCompiledCoverLanes:
    SIGNALS = tuple("abcdefg")

    def random_cover(self, rng):
        space = SignalSpace.of(self.SIGNALS)
        cubes = []
        for _ in range(rng.randint(1, 5)):
            literals = {
                s: rng.randint(0, 1)
                for s in self.SIGNALS
                if rng.random() < 0.5
            }
            cubes.append(Cube(literals).compiled(space))
        return CompiledCover(space, cubes)

    @pytest.mark.parametrize("kernel_name", KERNELS)
    def test_lane_round_trip(self, kernel_name):
        kernel = get_kernel(kernel_name)
        rng = random.Random(11)
        for _ in range(25):
            cover = self.random_cover(rng)
            masks, values = cover.to_lanes(kernel)
            back = CompiledCover.from_lanes(cover.space, masks, values, kernel)
            assert [(c.mask, c.value) for c in back.cubes] == [
                (c.mask, c.value) for c in cover.cubes
            ]

    @pytest.mark.parametrize("kernel_name", KERNELS)
    def test_covered_rows_matches_scalar(self, kernel_name):
        kernel = get_kernel(kernel_name)
        rng = random.Random(12)
        width = len(self.SIGNALS)
        for _ in range(25):
            cover = self.random_cover(rng)
            codes = [rng.getrandbits(width) for _ in range(30)]
            rows = kernel.pack_code_matrix(codes, width)
            bits = cover.covered_rows(rows, len(codes), kernel)
            for i, code in enumerate(codes):
                assert bool(bits >> i & 1) == cover.covers_packed(code)


# ----------------------------------------------------------------------
# batched netlist paths: composition BFS and event simulation
# ----------------------------------------------------------------------
def composition_snapshot(composition):
    sg = composition.sg
    return (
        sg.state_list,
        {state: sg.arcs_from(state) for state in sg.state_list},
        composition.conformance_failures,
        composition.rs_violations,
        composition.truncated,
        composition.parents,
    )


class TestBatchedComposition:
    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_batched_bfs_identical(self, fig3, style):
        netlist = netlist_from_implementation(synthesize(fig3), style)
        scalar = composition_snapshot(build_circuit_state_graph(netlist, fig3))
        for kernel_name in KERNELS:
            batched = build_circuit_state_graph_batched(
                netlist, fig3, kernel=get_kernel(kernel_name)
            )
            assert composition_snapshot(batched) == scalar, kernel_name

    def test_truncation_parity(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        scalar = build_circuit_state_graph(netlist, fig3, max_states=5)
        batched = build_circuit_state_graph_batched(netlist, fig3, max_states=5)
        assert scalar.truncated and batched.truncated
        assert composition_snapshot(batched) == composition_snapshot(scalar)


class TestSimulateBatch:
    def test_batched_sweep_matches_scalar_runs(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        for seed in range(5):
            scalar = simulate(
                netlist, fig3, max_events=300, seed=seed, batch=False
            )
            batched = simulate(
                netlist, fig3, max_events=300, seed=seed, batch=True
            )
            assert batched.fired_events == scalar.fired_events
            assert batched.disablings == scalar.disablings
            assert batched.conformance_failures == scalar.conformance_failures


# ----------------------------------------------------------------------
# CLI backend registry plumbing
# ----------------------------------------------------------------------
class TestCliBackendChoices:
    def test_unknown_backend_exits_2_listing_names(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["diff", "--backend", "nosuch"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in available_backends():
            assert name in err

    def test_wordlane_is_offered_everywhere(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("info", "synth", "verify", "diff", "table1", "batch"):
            sub = parser._subparsers._group_actions[0].choices[command]
            backend_actions = [
                action
                for action in sub._actions
                if "--backend" in action.option_strings
            ]
            assert backend_actions, command
            assert list(backend_actions[0].choices) == available_backends()
