"""Unit and property tests for Shannon-recursion cover operations."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.bdd import BDD
from repro.boolean.cover import Cover
from repro.boolean.cover_ops import (
    cofactor,
    complement,
    covers_equivalent,
    covers_implies,
    is_tautology,
)
from repro.boolean.cube import Cube

SIGNALS = ("a", "b", "c")


def all_points():
    return [dict(zip(SIGNALS, bits)) for bits in itertools.product((0, 1), repeat=3)]


class TestCofactor:
    def test_literal_removed(self):
        cover = Cover([Cube({"a": 1, "b": 0})])
        assert cofactor(cover, "a", 1) == Cover([Cube({"b": 0})])
        assert cofactor(cover, "a", 0).is_empty()

    def test_free_cube_survives(self):
        cover = Cover([Cube({"b": 0})])
        assert cofactor(cover, "a", 1) == cover


class TestTautology:
    def test_universal_cube(self):
        assert is_tautology(Cover([Cube()]), SIGNALS)

    def test_empty_cover(self):
        assert not is_tautology(Cover(), SIGNALS)

    def test_complementary_literals(self):
        cover = Cover([Cube({"a": 1}), Cube({"a": 0})])
        assert is_tautology(cover, SIGNALS)

    def test_incomplete_cover(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 0})])
        assert not is_tautology(cover, SIGNALS)

    def test_foreign_signal_rejected(self):
        with pytest.raises(ValueError):
            is_tautology(Cover([Cube({"z": 1})]), SIGNALS)


class TestComplement:
    def test_of_empty_is_universe(self):
        assert complement(Cover(), SIGNALS) == Cover([Cube()])

    def test_of_universe_is_empty(self):
        assert complement(Cover([Cube()]), SIGNALS).is_empty()

    def test_de_morgan_single_cube(self):
        result = complement(Cover([Cube({"a": 1, "b": 0})]), SIGNALS)
        for point in all_points():
            expected = not (point["a"] == 1 and point["b"] == 0)
            assert result.covers(point) == expected


class TestImplicationEquivalence:
    def test_subset_implication(self):
        small = Cover([Cube({"a": 1, "b": 1})])
        big = Cover([Cube({"a": 1})])
        assert covers_implies(small, big, SIGNALS)
        assert not covers_implies(big, small, SIGNALS)

    def test_syntactically_different_equivalent(self):
        left = Cover([Cube({"a": 1}), Cube({"a": 0, "b": 1})])
        right = Cover([Cube({"b": 1}), Cube({"a": 1, "b": 0})])
        # both are a + b
        assert covers_equivalent(left, right, SIGNALS)


cube_strategy = st.dictionaries(
    st.sampled_from(SIGNALS), st.integers(0, 1), max_size=3
).map(Cube)
cover_strategy = st.lists(cube_strategy, max_size=4).map(Cover)


class TestAgainstBDD:
    @given(cover_strategy)
    @settings(max_examples=80, deadline=None)
    def test_tautology_matches_bdd(self, cover):
        bdd = BDD(SIGNALS)
        assert is_tautology(cover, SIGNALS) == bdd.is_tautology(
            bdd.from_cover(cover)
        )

    @given(cover_strategy)
    @settings(max_examples=80, deadline=None)
    def test_complement_matches_bdd(self, cover):
        bdd = BDD(SIGNALS)
        comp = complement(cover, SIGNALS)
        assert bdd.from_cover(comp) == bdd.negate(bdd.from_cover(cover))

    @given(cover_strategy, cover_strategy)
    @settings(max_examples=80, deadline=None)
    def test_implication_matches_bdd(self, left, right):
        bdd = BDD(SIGNALS)
        assert covers_implies(left, right, SIGNALS) == bdd.implies(
            bdd.from_cover(left), bdd.from_cover(right)
        )
