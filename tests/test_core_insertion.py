"""Unit tests for expansion and state-signal insertion."""

import pytest

from repro.core.insertion import (
    InsertionError,
    expand_with_signal,
    insert_state_signals,
    labelling_from_partition,
    project_away,
)
from repro.core.mc import analyze_mc
from repro.sg.properties import is_output_semi_modular


def simple_labelling(sg, u_state, d_state):
    """x rises inside u_state, falls inside d_state, 1 in between."""
    order = {}
    # propagate: walk the cycle assigning 0 before u, 1 after, 0 after d
    labels = {}
    for state in sg.states:
        labels[state] = None
    labels[u_state] = "U"
    labels[d_state] = "D"
    # BFS from u_state forward until d_state: value 1
    frontier = [t for _, t in sg.arcs_from(u_state)]
    while frontier:
        s = frontier.pop()
        if labels[s] is not None:
            continue
        labels[s] = "1"
        frontier += [t for _, t in sg.arcs_from(s)]
    for state in sg.states:
        if labels[state] is None:
            labels[state] = "0"
    return labels


class TestExpansion:
    def test_toggle_expansion_shape(self, toggle_sg):
        labelling = {"s0": "0", "s1": "U", "s2": "1", "s3": "D"}
        expanded = expand_with_signal(toggle_sg, labelling, "x")
        # s1 and s3 split; q+ is delayed at (s1, 0)
        assert len(expanded) == 6
        assert expanded.signals == ("r", "q", "x")
        assert "x" in expanded.non_inputs

    def test_expansion_consistency(self, toggle_sg):
        labelling = {"s0": "0", "s1": "U", "s2": "1", "s3": "D"}
        expanded = expand_with_signal(toggle_sg, labelling, "x")
        expanded.check()

    def test_duplicate_signal_name_rejected(self, toggle_sg):
        with pytest.raises(ValueError):
            expand_with_signal(toggle_sg, {s: "0" for s in toggle_sg.states}, "q")

    def test_missing_label_rejected(self, toggle_sg):
        with pytest.raises(ValueError):
            expand_with_signal(toggle_sg, {"s0": "0"}, "x")

    def test_bad_label_rejected(self, toggle_sg):
        labels = {s: "0" for s in toggle_sg.states}
        labels["s0"] = "Z"
        with pytest.raises(ValueError):
            expand_with_signal(toggle_sg, labels, "x")

    def test_illegal_jump_rejected(self, toggle_sg):
        # 0 -> 1 along an arc with no U in between
        labels = {"s0": "0", "s1": "1", "s2": "1", "s3": "D"}
        with pytest.raises(ValueError):
            expand_with_signal(toggle_sg, labels, "x")

    def test_input_delay_rejected(self, toggle_sg):
        # s2 --r--> s3 with (U, 1) would delay input r
        labels = {"s0": "0", "s1": "0", "s2": "U", "s3": "1"}
        with pytest.raises(ValueError):
            expand_with_signal(toggle_sg, labels, "x")

    def test_projection_restores_original(self, toggle_sg):
        labelling = {"s0": "0", "s1": "U", "s2": "1", "s3": "D"}
        expanded = expand_with_signal(toggle_sg, labelling, "x")
        back = project_away(expanded, "x")
        original_arcs = {
            (toggle_sg.code(s), str(e), toggle_sg.code(t))
            for s, e, t in toggle_sg.arcs()
        }
        projected_arcs = {
            (back.code(s), str(e), back.code(t)) for s, e, t in back.arcs()
        }
        assert original_arcs == projected_arcs

    def test_project_away_input_rejected(self, toggle_sg):
        with pytest.raises(ValueError):
            project_away(toggle_sg, "r")


class TestPartitionLabelling:
    def test_boundary_absorption(self, toggle_sg):
        partition = {"s0": 0, "s1": 1, "s2": 1, "s3": 0}
        labelling = labelling_from_partition(toggle_sg, partition)
        assert labelling is not None
        assert labelling["s1"] == "U"
        assert labelling["s3"] == "D"
        assert labelling["s0"] == "0"
        assert labelling["s2"] == "1"

    def test_constant_partition_rejected(self, toggle_sg):
        partition = {s: 0 for s in toggle_sg.states}
        assert labelling_from_partition(toggle_sg, partition) is None

    def test_closure_over_input_arcs(self, choice_sg):
        # flip between sa1 (after a+) and the rest; the closure must
        # produce a valid labelling or reject -- never crash
        partition = {s: 0 for s in choice_sg.states}
        partition["sa1"] = 1
        partition["sa2"] = 1
        result = labelling_from_partition(choice_sg, partition)
        if result is not None:
            expand_with_signal(choice_sg, result, "x")


class TestInsertion:
    def test_fig1_needs_exactly_one_signal(self, fig1):
        """The paper: 'it is sufficient to add only one signal x'."""
        result = insert_state_signals(fig1, max_models=400)
        assert result.added_signals == ["x"]
        assert result.satisfied
        assert analyze_mc(result.sg).satisfied

    def test_fig4_needs_exactly_one_signal(self, fig4):
        """The paper: 'MC ... can remove the hazard by adding one signal'."""
        result = insert_state_signals(fig4, max_models=400)
        assert len(result.added_signals) == 1

    def test_insertion_preserves_output_semi_modularity(self, fig1):
        result = insert_state_signals(fig1, max_models=400)
        assert is_output_semi_modular(result.sg)

    def test_insertion_preserves_behaviour(self, fig1):
        """Hiding the inserted signal gives back Figure 1 exactly."""
        result = insert_state_signals(fig1, max_models=400)
        projected = project_away(result.sg, result.added_signals[0])
        original = {
            (fig1.code(s), str(e), fig1.code(t)) for s, e, t in fig1.arcs()
        }
        back = {
            (projected.code(s), str(e), projected.code(t))
            for s, e, t in projected.arcs()
        }
        assert original == back

    def test_satisfied_graph_unchanged(self, fig3):
        result = insert_state_signals(fig3)
        assert result.added_signals == []
        assert result.sg is fig3

    def test_insertion_records_rounds(self, fig4):
        result = insert_state_signals(fig4, max_models=400)
        assert len(result.rounds) == 1
        round_ = result.rounds[0]
        assert round_.signal == "x"
        assert round_.failures_after == 0
        assert round_.models_tried >= 1

    def test_budget_exhaustion_raises(self, fig1):
        with pytest.raises(InsertionError):
            insert_state_signals(fig1, max_signals=0)
