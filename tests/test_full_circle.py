"""Full-circle integration: every representation converts to every other.

Figure 4 exists only as a state graph in the paper; here it travels
through the whole toolchain:

SG -> (regions synthesis) -> STG -> .g file -> CLI -> netlist JSON ->
gate-level check -> hazard verdicts matching the direct in-memory run.
"""


import pytest

from repro.cli import main
from repro.core.baseline import baseline_synthesize
from repro.core.mc import analyze_mc
from repro.netlist.io import save_netlist
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.conformance import trace_equivalent
from repro.stg.parser import load_g
from repro.stg.reachability import stg_to_state_graph
from repro.stg.synthesis import stg_from_state_graph
from repro.stg.writer import dumps_g


@pytest.fixture()
def fig4_g_file(tmp_path, fig4):
    """Figure 4 exported as a .g specification file."""
    stg = stg_from_state_graph(fig4, name="fig4")
    path = tmp_path / "fig4.g"
    path.write_text(dumps_g(stg))
    return str(path)


def test_fig4_g_export_is_equivalent(fig4, fig4_g_file):
    back = stg_to_state_graph(load_g(fig4_g_file))
    assert trace_equivalent(back, fig4)
    # the exported spec reproduces the MC verdict too
    report = analyze_mc(back)
    assert {v.er.transition_name for v in report.failed} == {"b+/1"}


def test_cli_check_flags_the_baseline_hazard(tmp_path, fig4, fig4_g_file, capsys):
    """The CLI, fed the exported spec and the hazardous baseline netlist,
    must return a non-zero exit code and name the conflict."""
    netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
    circuit = tmp_path / "baseline.json"
    save_netlist(netlist, str(circuit))
    code = main(["check", fig4_g_file, str(circuit)])
    out = capsys.readouterr().out
    assert code == 1
    assert "HAZARDOUS" in out
    assert "witness trace" in out


def test_cli_synth_repairs_the_exported_spec(tmp_path, fig4_g_file, capsys):
    code = main(["synth", fig4_g_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "state signal(s) inserted" in out
    assert "HAZARD-FREE" in out
