"""Unit and property tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.bdd import BDD
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube

SIGNALS = ("a", "b", "c")


def all_points():
    return [dict(zip(SIGNALS, bits)) for bits in itertools.product((0, 1), repeat=3)]


class TestBasics:
    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            BDD(("a", "a"))

    def test_terminals(self):
        bdd = BDD(SIGNALS)
        assert bdd.constant(True) == BDD.ONE
        assert bdd.constant(False) == BDD.ZERO
        assert bdd.is_tautology(BDD.ONE)
        assert not bdd.is_tautology(BDD.ZERO)

    def test_var_semantics(self):
        bdd = BDD(SIGNALS)
        node = bdd.var("b")
        for point in all_points():
            assert bdd.evaluate(node, point) == bool(point["b"])

    def test_nvar_is_negation(self):
        bdd = BDD(SIGNALS)
        assert bdd.nvar("a") == bdd.negate(bdd.var("a"))

    def test_canonical_equivalence(self):
        bdd = BDD(SIGNALS)
        # a & b == b & a structurally after reduction
        left = bdd.conj(bdd.var("a"), bdd.var("b"))
        right = bdd.conj(bdd.var("b"), bdd.var("a"))
        assert bdd.equivalent(left, right)

    def test_de_morgan(self):
        bdd = BDD(SIGNALS)
        a, b = bdd.var("a"), bdd.var("b")
        lhs = bdd.negate(bdd.conj(a, b))
        rhs = bdd.disj(bdd.negate(a), bdd.negate(b))
        assert lhs == rhs

    def test_restrict(self):
        bdd = BDD(SIGNALS)
        f = bdd.conj(bdd.var("a"), bdd.var("b"))
        assert bdd.restrict(f, "a", 1) == bdd.var("b")
        assert bdd.restrict(f, "a", 0) == BDD.ZERO

    def test_satisfy_count(self):
        bdd = BDD(SIGNALS)
        assert bdd.satisfy_count(BDD.ONE) == 8
        assert bdd.satisfy_count(BDD.ZERO) == 0
        assert bdd.satisfy_count(bdd.var("a")) == 4
        assert bdd.satisfy_count(bdd.conj(bdd.var("a"), bdd.var("c"))) == 2

    def test_one_sat(self):
        bdd = BDD(SIGNALS)
        f = bdd.conj(bdd.var("a"), bdd.nvar("c"))
        point = bdd.one_sat(f)
        assert point is not None
        assert bdd.evaluate(f, point)
        assert bdd.one_sat(BDD.ZERO) is None

    def test_node_count(self):
        bdd = BDD(SIGNALS)
        assert bdd.node_count(BDD.ONE) == 0
        f = bdd.conj(bdd.var("a"), bdd.var("b"))
        assert bdd.node_count(f) == 2

    def test_implies(self):
        bdd = BDD(SIGNALS)
        ab = bdd.conj(bdd.var("a"), bdd.var("b"))
        assert bdd.implies(ab, bdd.var("a"))
        assert not bdd.implies(bdd.var("a"), ab)


cube_strategy = st.dictionaries(
    st.sampled_from(SIGNALS), st.integers(0, 1), max_size=3
).map(Cube)


class TestAgainstCubeAlgebra:
    @given(st.lists(cube_strategy, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_cover_semantics_match(self, cubes):
        cover = Cover(cubes)
        bdd = BDD(SIGNALS)
        node = bdd.from_cover(cover)
        for point in all_points():
            assert bdd.evaluate(node, point) == cover.covers(point)

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=80, deadline=None)
    def test_containment_matches(self, x, y):
        bdd = BDD(SIGNALS)
        fx, fy = bdd.from_cube(x), bdd.from_cube(y)
        assert x.contains(y) == bdd.implies(fy, fx)

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=80, deadline=None)
    def test_intersection_matches(self, x, y):
        bdd = BDD(SIGNALS)
        both = x.intersect(y)
        product = bdd.conj(bdd.from_cube(x), bdd.from_cube(y))
        if both is None:
            assert product == BDD.ZERO
        else:
            assert product == bdd.from_cube(both)

    def test_minimizer_equivalence_via_bdd(self):
        from repro.boolean.minimize import minimize_onset

        codes = all_points()
        on = [codes[i] for i in (1, 3, 5, 7)]  # f = c
        cover = minimize_onset(SIGNALS, on)
        bdd = BDD(SIGNALS)
        assert bdd.from_cover(cover) == bdd.var("c")
