"""Unit tests for the cube algebra."""

import pytest

from repro.boolean.cube import Cube


class TestConstruction:
    def test_empty_cube_is_universal(self):
        cube = Cube.universal()
        assert len(cube) == 0
        assert cube.covers({"a": 0, "b": 1})

    def test_literal_values_validated(self):
        with pytest.raises(ValueError):
            Cube({"a": 2})

    def test_minterm(self):
        cube = Cube.minterm({"a": 1, "b": 0})
        assert cube.value_of("a") == 1
        assert cube.value_of("b") == 0

    def test_from_vector(self):
        cube = Cube.from_vector(("a", "b", "c"), (1, 0, 1))
        assert cube.literals == (("a", 1), ("b", 0), ("c", 1))

    def test_from_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            Cube.from_vector(("a",), (1, 0))


class TestSemantics:
    def test_covers_matches_literals(self):
        cube = Cube({"a": 1, "b": 0})
        assert cube.covers({"a": 1, "b": 0, "c": 1})
        assert not cube.covers({"a": 1, "b": 1, "c": 1})
        assert not cube.covers({"a": 0, "b": 0})

    def test_value_of_missing_literal_is_none(self):
        assert Cube({"a": 1}).value_of("b") is None

    def test_evaluator_agrees_with_covers(self):
        cube = Cube({"a": 1, "c": 0})
        order = ("a", "b", "c")
        evaluate = cube.evaluator(order)
        for code in [(1, 0, 0), (1, 1, 0), (1, 0, 1), (0, 0, 0)]:
            assert evaluate(code) == cube.covers(dict(zip(order, code)))

    def test_contains_signal(self):
        cube = Cube({"a": 1})
        assert "a" in cube
        assert "b" not in cube


class TestAlgebra:
    def test_intersect_compatible(self):
        result = Cube({"a": 1}).intersect(Cube({"b": 0}))
        assert result == Cube({"a": 1, "b": 0})

    def test_intersect_conflicting_is_none(self):
        assert Cube({"a": 1}).intersect(Cube({"a": 0})) is None

    def test_containment(self):
        big = Cube({"a": 1})
        small = Cube({"a": 1, "b": 0})
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_universal_contains_everything(self):
        assert Cube.universal().contains(Cube({"a": 0, "b": 1}))

    def test_without_and_expand(self):
        cube = Cube({"a": 1, "b": 0})
        assert cube.without(("b",)) == Cube({"a": 1})
        assert cube.expand("b") == Cube({"a": 1})
        with pytest.raises(KeyError):
            cube.expand("z")

    def test_restricted_to(self):
        cube = Cube({"a": 1, "b": 0, "c": 1})
        assert cube.restricted_to(("a", "c")) == Cube({"a": 1, "c": 1})

    def test_with_literal(self):
        assert Cube({"a": 1}).with_literal("b", 0) == Cube({"a": 1, "b": 0})

    def test_supercube(self):
        left = Cube({"a": 1, "b": 0})
        right = Cube({"a": 1, "b": 1})
        assert left.supercube(right) == Cube({"a": 1})

    def test_supercube_of_codes(self):
        codes = [{"a": 1, "b": 0, "c": 0}, {"a": 1, "b": 1, "c": 0}]
        cube = Cube.supercube_of_codes(codes, ("a", "b", "c"))
        assert cube == Cube({"a": 1, "c": 0})

    def test_supercube_of_empty_raises(self):
        with pytest.raises(ValueError):
            Cube.supercube_of_codes([], ("a",))

    def test_distance(self):
        assert Cube({"a": 1, "b": 0}).distance(Cube({"a": 0, "b": 1})) == 2
        assert Cube({"a": 1}).distance(Cube({"b": 1})) == 0


class TestDunder:
    def test_equality_and_hash(self):
        assert Cube({"a": 1, "b": 0}) == Cube({"b": 0, "a": 1})
        assert hash(Cube({"a": 1})) == hash(Cube({"a": 1}))
        assert Cube({"a": 1}) != Cube({"a": 0})

    def test_usable_in_sets(self):
        cubes = {Cube({"a": 1}), Cube({"a": 1}), Cube({"a": 0})}
        assert len(cubes) == 2

    def test_repr(self):
        assert repr(Cube()) == "Cube(1)"
        assert "a" in repr(Cube({"a": 1}))
        assert "b'" in repr(Cube({"b": 0}))
