"""Tests for the top-level public API."""

import pytest

import repro
from repro.bench import load_benchmark


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_synthesize_from_stg_end_to_end():
    result = repro.synthesize_from_stg(load_benchmark("delement"))
    assert result.added_signals == ["x"]
    assert result.hazard_free
    assert "b = C(Sb, Rb')" in result.implementation.equations()


def test_synthesize_from_state_graph(toggle_sg):
    result = repro.synthesize_from_state_graph(toggle_sg)
    assert result.added_signals == []
    assert result.hazard_free
    assert result.netlist.gate_count() == {"buf": 1}


def test_skip_verification(toggle_sg):
    result = repro.synthesize_from_state_graph(toggle_sg, verify=False)
    assert result.hazard_report is None
    assert not result.hazard_free  # unknown counts as not verified


def test_rs_style(toggle_sg):
    result = repro.synthesize_from_state_graph(toggle_sg, style="RS")
    assert result.hazard_free


def test_parse_g_reexported():
    stg = repro.parse_g(
        ".inputs r\n.outputs q\n.graph\nr+ q+\nq+ r-\nr- q-\nq- r+\n"
        ".marking { <q-,r+> }\n.end"
    )
    sg = repro.stg_to_state_graph(stg)
    assert len(sg) == 4


def test_synthesis_error_surfaces(fig1):
    with pytest.raises(repro.SynthesisError):
        repro.synthesize(fig1)
