"""Tests for the DeMorgan/Eichelberger ternary hazard-freedom oracle."""

import pytest

from repro.bench.figures import figure4_sg
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.core.baseline import baseline_synthesize
from repro.netlist.netlist import netlist_from_implementation
from repro.verify.hazard_free import (
    DeMorganClaim,
    DeMorganReport,
    cross_check_verdicts,
    demorgan_check,
    suggest_glitch_injections,
    ternary_cover,
    ternary_cube,
)


class TestTernaryHelpers:
    def test_cube_definite_one(self):
        assert ternary_cube(Cube({"a": 1, "b": 0}), {"a": 1, "b": 0}) == 1

    def test_cube_definite_zero_beats_unknown(self):
        # one falsified literal decides the AND even with another in flight
        assert ternary_cube(Cube({"a": 1, "b": 0}), {"a": 0, "b": None}) == 0

    def test_cube_unknown(self):
        assert ternary_cube(Cube({"a": 1, "b": 0}), {"a": 1, "b": None}) is None

    def test_cube_missing_signal_is_unknown(self):
        assert ternary_cube(Cube({"a": 1}), {}) is None

    def test_empty_cube_is_one(self):
        assert ternary_cube(Cube({}), {"a": None}) == 1

    def test_cover_one_beats_unknown(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 1})])
        assert ternary_cover(cover, {"a": 1, "b": None}) == 1

    def test_cover_unknown(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 1})])
        assert ternary_cover(cover, {"a": 0, "b": None}) is None

    def test_cover_zero(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 1})])
        assert ternary_cover(cover, {"a": 0, "b": 0}) == 0

    def test_empty_cover_is_zero(self):
        assert ternary_cover(Cover(), {"a": None}) == 0


class TestFigure4:
    """Example 2: the non-MC baseline glitches, the repaired circuit does not."""

    def test_baseline_is_flagged(self):
        impl = baseline_synthesize(figure4_sg())
        report = demorgan_check(impl)
        assert not report.hazard_free
        assert report.conclusive
        kinds = {claim.kind for claim in report.claims}
        assert "monotonicity" in kinds
        # the paper's culprit: a set cube of b rising after b already fired
        assert any(
            claim.signal == "b" and claim.cover == "set" for claim in report.claims
        )
        assert "HAZARDOUS" in report.describe()

    def test_baseline_agrees_with_si_check(self):
        from repro.netlist.hazards import verify_speed_independence

        sg = figure4_sg()
        impl = baseline_synthesize(sg)
        netlist = netlist_from_implementation(impl, style="C")
        si = verify_speed_independence(netlist, sg, max_states=200_000)
        report = demorgan_check(impl)
        assert not si.hazard_free and not report.hazard_free
        assert cross_check_verdicts("fig4", report, si.hazard_free) is None

    def test_repaired_circuit_is_clean(self):
        from repro import synthesize_from_state_graph

        result = synthesize_from_state_graph(figure4_sg(), max_models=400)
        assert result.hazard_free
        report = demorgan_check(result.implementation)
        assert report.hazard_free
        assert report.conclusive
        assert "HAZARD-FREE (DeMorgan)" in report.describe()

    def test_suggestions_target_real_gates(self):
        impl = baseline_synthesize(figure4_sg())
        netlist = netlist_from_implementation(impl, style="C")
        report = demorgan_check(impl)
        suggestions = suggest_glitch_injections(netlist, report, per_claim=2)
        assert suggestions
        lo, hi = 5.0, 150.0
        for at, gate in suggestions:
            assert lo <= at <= hi
            assert gate in netlist.gates
        # deterministic: same report, same scenarios
        assert suggestions == suggest_glitch_injections(netlist, report, per_claim=2)

    def test_suggestions_empty_without_claims(self):
        from repro import synthesize_from_state_graph

        result = synthesize_from_state_graph(figure4_sg(), max_models=400)
        report = demorgan_check(result.implementation)
        netlist = result.netlist
        assert suggest_glitch_injections(netlist, report) == []


class TestCrossCheck:
    def _report(self, claims=(), truncated=()):
        return DeMorganReport(
            name="x",
            claims=list(claims),
            truncated_states=list(truncated),
        )

    def _claim(self):
        return DeMorganClaim(
            signal="a", cover="set", state="s0", kind="static", detail="d"
        )

    def test_agreeing_clean(self):
        assert cross_check_verdicts("x", self._report(), True) is None

    def test_agreeing_hazardous(self):
        report = self._report(claims=[self._claim()])
        assert cross_check_verdicts("x", report, False) is None

    def test_inconclusive_si_never_disagrees(self):
        report = self._report(claims=[self._claim()])
        assert cross_check_verdicts("x", report, None) is None

    def test_truncated_demorgan_never_disagrees(self):
        report = self._report(truncated=["s9"])
        assert not report.conclusive
        assert cross_check_verdicts("x", report, False) is None

    def test_disagreement_demorgan_claims(self):
        report = self._report(claims=[self._claim()])
        message = cross_check_verdicts("x", report, True)
        assert message is not None and "DeMorgan oracle claims" in message

    def test_disagreement_si_claims(self):
        message = cross_check_verdicts("x", self._report(), False)
        assert message is not None and "hazard-free" in message


class TestTruncation:
    def test_corner_cap_marks_inconclusive(self):
        impl = baseline_synthesize(figure4_sg())
        # a cap of 0 in-flight signals forces every static check to punt
        report = demorgan_check(impl, max_corner_signals=0)
        assert report.truncated_states
        assert not report.conclusive
        assert not report.hazard_free
        if not report.claims:
            assert "INCONCLUSIVE" in report.describe()
        assert "above the corner cap" in report.describe()


class TestTable1Agreement:
    """Spot-check a paper benchmark end to end against the SI verdict."""

    @pytest.mark.parametrize("name", ["nowick", "delement"])
    def test_benchmark_agrees(self, name):
        from repro.bench.suite import load_benchmark
        from repro.pipeline import Pipeline, PipelineSpec

        stg = load_benchmark(name)
        pipe = Pipeline()
        spec = PipelineSpec.from_stg(stg, name=name)
        plan = pipe.run(spec, until="covers")
        synthesized = pipe.run(spec)
        report = demorgan_check(plan.implementation)
        assert report.conclusive
        assert (
            cross_check_verdicts(name, report, synthesized.hazard_free) is None
        )
