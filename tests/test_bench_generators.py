"""Tests for the parameterised specification generators.

The families themselves now live in :mod:`repro.corpus.families`; this
module keeps importing the classic trio through the deprecated
``repro.bench.generators`` shim on purpose, so the forwarding path
stays exercised alongside the generators it forwards to.
"""

import warnings

import pytest

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.bench.generators import alternator, concurrent_fork, token_ring
from repro.core.mc import analyze_mc
from repro.sg.csc import has_csc
from repro.sg.properties import is_output_semi_modular
from repro.stg.reachability import stg_to_state_graph
from repro.stg.structural import is_free_choice, is_live_and_safe, is_marked_graph


class TestTokenRing:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_shape(self, n):
        stg = token_ring(n)
        assert len(stg.inputs) == n
        assert len(stg.outputs) == n
        sg = stg_to_state_graph(stg)
        assert len(sg) == 4 * n
        assert is_output_semi_modular(sg)

    def test_mc_clean(self):
        assert analyze_mc(stg_to_state_graph(token_ring(3))).satisfied

    def test_structural(self):
        stg = token_ring(4)
        assert is_marked_graph(stg.net)
        assert is_live_and_safe(stg)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            token_ring(0)


class TestConcurrentFork:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_shape(self, n):
        stg = concurrent_fork(n)
        sg = stg_to_state_graph(stg)
        assert is_output_semi_modular(sg)
        assert has_csc(sg)
        # the diamond of n concurrent handshakes appears in the count
        assert len(sg) >= 2 ** n

    def test_mc_clean(self):
        assert analyze_mc(stg_to_state_graph(concurrent_fork(3))).satisfied

    def test_free_choice(self):
        assert is_free_choice(concurrent_fork(3).net)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            concurrent_fork(0)


class TestAlternator:
    @pytest.mark.parametrize("n,expected_states", [(2, 8), (3, 12), (4, 16)])
    def test_shape(self, n, expected_states):
        sg = stg_to_state_graph(alternator(n))
        assert len(sg) == expected_states
        assert is_output_semi_modular(sg)

    def test_needs_insertion(self):
        sg = stg_to_state_graph(alternator(2))
        assert not analyze_mc(sg).satisfied

    def test_two_way_matches_luciano(self):
        from repro.core.insertion import insert_state_signals

        sg = stg_to_state_graph(alternator(2))
        result = insert_state_signals(sg, max_models=400)
        assert len(result.added_signals) == 1

    def test_rejects_one_way(self):
        with pytest.raises(ValueError):
            alternator(1)


class TestSeriesParallel:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_specs_are_wellformed(self, seed):
        from repro.corpus import random_series_parallel
        from repro.stg.structural import is_live_and_safe

        stg = random_series_parallel(seed, leaves=4)
        assert is_live_and_safe(stg)
        sg = stg_to_state_graph(stg)
        sg.check()
        assert is_output_semi_modular(sg)
        # MC analysis must complete (satisfied or not) without error
        analyze_mc(sg)

    @pytest.mark.parametrize("seed", range(5))
    def test_regions_synthesis_roundtrips_generated_specs(self, seed):
        from repro.corpus import random_series_parallel
        from repro.sg.conformance import trace_equivalent
        from repro.stg.synthesis import NotSynthesizableError, stg_from_state_graph

        sg = stg_to_state_graph(random_series_parallel(seed, leaves=3))
        try:
            stg = stg_from_state_graph(sg)
        except NotSynthesizableError:
            pytest.skip("needs label splitting")
        assert trace_equivalent(stg_to_state_graph(stg), sg)

    def test_deterministic_per_seed(self):
        from repro.corpus import random_series_parallel
        from repro.stg.writer import dumps_g

        assert dumps_g(random_series_parallel(3)) == dumps_g(
            random_series_parallel(3)
        )

    def test_pipeline_repairs_a_generated_spec(self):
        """End-to-end on a generated controller: two signals inserted,
        hazard-free (seed chosen for speed; larger seeds work too)."""
        from repro import synthesize_from_state_graph
        from repro.corpus import random_series_parallel

        sg = stg_to_state_graph(random_series_parallel(2, leaves=2))
        result = synthesize_from_state_graph(sg, max_models=300)
        assert len(result.added_signals) == 2
        assert result.hazard_free


class TestDeprecatedShim:
    """``repro.bench.generators`` forwards to ``repro.corpus`` with a warning."""

    @pytest.mark.parametrize(
        "name",
        [
            "token_ring",
            "concurrent_fork",
            "alternator",
            "random_series_parallel",
            "fuzz_specs",
        ],
    )
    def test_forwarded_names_warn_and_match(self, name):
        import repro.bench.generators as shim
        import repro.corpus as corpus

        with pytest.warns(DeprecationWarning, match=f"{name} is deprecated"):
            forwarded = getattr(shim, name)
        assert forwarded is getattr(corpus, name)

    def test_unknown_name_raises(self):
        import repro.bench.generators as shim

        with pytest.raises(AttributeError):
            shim.no_such_generator

    def test_dir_lists_forwarded_names(self):
        import repro.bench.generators as shim

        assert {"token_ring", "fuzz_specs"} <= set(dir(shim))
