"""Unit tests for the 4-valued labelling encoding."""

import pytest

from repro.core.assignment import (
    LabelEncoding,
    allowed_pair,
    lifted_phases,
    phases,
)


class TestLabelTables:
    def test_phases(self):
        assert phases("0") == (0,)
        assert phases("1") == (1,)
        assert phases("U") == (0, 1)
        assert phases("D") == (1, 0)

    @pytest.mark.parametrize(
        "pair", [("0", "0"), ("0", "U"), ("0", "D"), ("U", "U"),
                 ("1", "1"), ("1", "D"), ("1", "U"), ("D", "D")]
    )
    def test_always_legal(self, pair):
        assert allowed_pair(*pair, is_input_event=True)
        assert allowed_pair(*pair, is_input_event=False)

    @pytest.mark.parametrize(
        "pair", [("U", "1"), ("U", "D"), ("D", "0"), ("D", "U")]
    )
    def test_delay_pairs_forbidden_for_inputs(self, pair):
        assert not allowed_pair(*pair, is_input_event=True)
        assert allowed_pair(*pair, is_input_event=False)

    @pytest.mark.parametrize(
        "pair", [("0", "1"), ("1", "0"), ("U", "0"), ("D", "1")]
    )
    def test_never_legal(self, pair):
        assert not allowed_pair(*pair, is_input_event=True)
        assert not allowed_pair(*pair, is_input_event=False)

    def test_lifted_phases_shared(self):
        assert lifted_phases("0", "0") == (0,)
        assert lifted_phases("U", "U") == (0, 1)
        assert lifted_phases("U", "1") == (1,)   # delayed at phase 0
        assert lifted_phases("U", "D") == (1,)   # phase-0 lift would kill x+
        assert lifted_phases("D", "U") == (0,)
        assert lifted_phases("D", "0") == (0,)
        assert lifted_phases("1", "U") == (1,)
        assert lifted_phases("0", "D") == (0,)


class TestEncoding:
    def test_models_obey_edge_rules(self, toggle_sg):
        encoding = LabelEncoding(toggle_sg)
        for _ in range(10):
            labelling = encoding.solve()
            if labelling is None:
                break
            for source, event, target in toggle_sg.arcs():
                assert allowed_pair(
                    labelling[source],
                    labelling[target],
                    event.signal in toggle_sg.inputs,
                ), (labelling, source, target)
            assert "U" in labelling.values()
            assert "D" in labelling.values()
            encoding.forbid_model(labelling)

    def test_require_label(self, toggle_sg):
        encoding = LabelEncoding(toggle_sg)
        encoding.require_label("s1", ("U",))
        labelling = encoding.solve()
        assert labelling is not None and labelling["s1"] == "U"

    def test_require_distinct_values(self, toggle_sg):
        encoding = LabelEncoding(toggle_sg)
        encoding.require_distinct_values("s0", "s2")
        labelling = encoding.solve()
        assert labelling is not None
        assert {labelling["s0"], labelling["s2"]} == {"0", "1"}

    def test_forbid_model_enumerates_distinct(self, toggle_sg):
        encoding = LabelEncoding(toggle_sg)
        seen = set()
        for _ in range(5):
            labelling = encoding.solve()
            if labelling is None:
                break
            key = tuple(sorted(labelling.items()))
            assert key not in seen
            seen.add(key)
            encoding.forbid_model(labelling)
        assert len(seen) >= 2

    def test_unsatisfiable_constraints(self, toggle_sg):
        encoding = LabelEncoding(toggle_sg)
        encoding.require_label("s0", ("0",))
        encoding.require_label("s0", ("1",))
        assert encoding.solve() is None
