"""Unit tests for the basic gate library."""

import pytest

from repro.netlist.gates import Gate, GateKind


class TestValidation:
    def test_not_needs_one_input(self):
        with pytest.raises(ValueError):
            Gate("y", GateKind.NOT, (("a", 1), ("b", 1)))

    def test_c_needs_two_inputs(self):
        with pytest.raises(ValueError):
            Gate("y", GateKind.C, (("a", 1),))

    def test_and_needs_inputs(self):
        with pytest.raises(ValueError):
            Gate("y", GateKind.AND, ())

    def test_polarity_checked(self):
        with pytest.raises(ValueError):
            Gate("y", GateKind.AND, (("a", 2),))


class TestCombinational:
    def test_and_with_bubble(self):
        gate = Gate("y", GateKind.AND, (("a", 1), ("b", 0)))
        assert gate.next_value({"a": 1, "b": 0}, 0) == 1
        assert gate.next_value({"a": 1, "b": 1}, 0) == 0

    def test_or(self):
        gate = Gate("y", GateKind.OR, (("a", 1), ("b", 1)))
        assert gate.next_value({"a": 0, "b": 1}, 0) == 1
        assert gate.next_value({"a": 0, "b": 0}, 1) == 0

    def test_nor_nand(self):
        nor = Gate("y", GateKind.NOR, (("a", 1), ("b", 1)))
        assert nor.next_value({"a": 0, "b": 0}, 0) == 1
        assert nor.next_value({"a": 1, "b": 0}, 1) == 0
        nand = Gate("y", GateKind.NAND, (("a", 1), ("b", 1)))
        assert nand.next_value({"a": 1, "b": 1}, 1) == 0
        assert nand.next_value({"a": 0, "b": 1}, 0) == 1

    def test_buf_not(self):
        buf = Gate("y", GateKind.BUF, (("a", 1),))
        inv = Gate("y", GateKind.NOT, (("a", 1),))
        assert buf.next_value({"a": 1}, 0) == 1
        assert inv.next_value({"a": 1}, 0) == 0


class TestLatches:
    def test_c_element_truth_table(self):
        """C = AB + (A+B)C, the paper's next-state equation."""
        gate = Gate("c", GateKind.C, (("a", 1), ("b", 1)))
        assert gate.next_value({"a": 1, "b": 1}, 0) == 1
        assert gate.next_value({"a": 0, "b": 0}, 1) == 0
        assert gate.next_value({"a": 1, "b": 0}, 0) == 0  # hold
        assert gate.next_value({"a": 1, "b": 0}, 1) == 1  # hold

    def test_c_element_with_inverted_reset(self):
        # a = C(S, R'): rises on S=1,R=0; falls on S=0,R=1
        gate = Gate("a", GateKind.C, (("S", 1), ("R", 0)))
        assert gate.next_value({"S": 1, "R": 0}, 0) == 1
        assert gate.next_value({"S": 0, "R": 1}, 1) == 0
        assert gate.next_value({"S": 0, "R": 0}, 1) == 1  # hold

    def test_rs_latch(self):
        gate = Gate("q", GateKind.RS, (("S", 1), ("R", 1)))
        assert gate.next_value({"S": 1, "R": 0}, 0) == 1
        assert gate.next_value({"S": 0, "R": 1}, 1) == 0
        assert gate.next_value({"S": 0, "R": 0}, 1) == 1  # hold
        assert gate.next_value({"S": 1, "R": 1}, 0) == 0  # hold on overlap

    def test_rs_illegal_detection(self):
        gate = Gate("q", GateKind.RS, (("S", 1), ("R", 1)))
        assert gate.rs_illegal({"S": 1, "R": 1})
        assert not gate.rs_illegal({"S": 1, "R": 0})
        non_latch = Gate("y", GateKind.AND, (("a", 1),))
        assert not non_latch.rs_illegal({"a": 1})


def test_describe():
    gate = Gate("y", GateKind.AND, (("a", 1), ("b", 0)))
    assert gate.describe() == "y = AND(a, b')"
