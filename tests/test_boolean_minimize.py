"""Unit tests for two-level minimisation (Quine--McCluskey + covering)."""

import itertools

import pytest

from repro.boolean.cube import Cube
from repro.boolean.minimize import generate_primes, minimize_onset, solve_covering


def all_codes(signals):
    for bits in itertools.product((0, 1), repeat=len(signals)):
        yield dict(zip(signals, bits))


def assert_equivalent(cover, signals, on, dc=()):
    on_set = [tuple(code[s] for s in signals) for code in on]
    dc_set = [tuple(code[s] for s in signals) for code in dc]
    for code in all_codes(signals):
        vector = tuple(code[s] for s in signals)
        value = cover.covers(code)
        if vector in on_set:
            assert value, f"must be 1 on {code}"
        elif vector not in dc_set:
            assert not value, f"must be 0 on {code}"


class TestGeneratePrimes:
    def test_single_minterm(self):
        primes = generate_primes({0b0}, set(), 2)
        assert primes == [(0, 0)]

    def test_full_function_is_one_prime(self):
        primes = generate_primes({0, 1, 2, 3}, set(), 2)
        assert primes == [(0b11, 0)]

    def test_dc_merges_but_pure_dc_primes_dropped(self):
        # f(a) with on = {1}, dc = {0}: single prime covering everything
        primes = generate_primes({1}, {0}, 1)
        assert (1, 0) in primes


class TestSolveCovering:
    def test_essential_rows_picked(self):
        rows = [frozenset({1}), frozenset({2}), frozenset({1, 2})]
        assert solve_covering(rows, {1, 2}) == [2]

    def test_unreachable_universe(self):
        with pytest.raises(ValueError):
            solve_covering([frozenset({1})], {1, 2})

    def test_cost_respected(self):
        rows = [frozenset({1, 2}), frozenset({1}), frozenset({2})]
        assert solve_covering(rows, {1, 2}, cost=[5, 1, 1]) == [1, 2]


class TestMinimizeOnset:
    def test_empty_onset(self):
        assert minimize_onset(("a",), []).is_empty()

    def test_xor_needs_two_cubes(self):
        signals = ("a", "b")
        on = [{"a": 0, "b": 1}, {"a": 1, "b": 0}]
        cover = minimize_onset(signals, on)
        assert len(cover) == 2
        assert_equivalent(cover, signals, on)

    def test_and_is_one_cube(self):
        signals = ("a", "b")
        on = [{"a": 1, "b": 1}]
        cover = minimize_onset(signals, on)
        assert cover == __import__("repro.boolean.cover", fromlist=["Cover"]).Cover(
            [Cube({"a": 1, "b": 1})]
        )

    def test_dont_cares_merge(self):
        signals = ("a", "b")
        on = [{"a": 1, "b": 1}]
        dc = [{"a": 1, "b": 0}]
        cover = minimize_onset(signals, on, dc)
        assert len(cover) == 1
        assert len(cover.cubes[0]) == 1  # merged into literal a

    def test_three_variable_classic(self):
        # majority function maj(a,b,c): minimum cover = ab + ac + bc
        signals = ("a", "b", "c")
        on = [
            dict(zip(signals, bits))
            for bits in itertools.product((0, 1), repeat=3)
            if sum(bits) >= 2
        ]
        cover = minimize_onset(signals, on)
        assert len(cover) == 3
        assert_equivalent(cover, signals, on)

    def test_exhaustive_small_functions(self):
        # every 2-variable completely specified function minimises correctly
        signals = ("a", "b")
        codes = list(all_codes(signals))
        for mask in range(16):
            on = [codes[i] for i in range(4) if mask >> i & 1]
            cover = minimize_onset(signals, on)
            assert_equivalent(cover, signals, on)
