"""The sharded store: routing, layouts, remote tier, backpressure."""

import json
import os

import pytest

from repro.pipeline import AnalysisContext, ArtifactStore, Pipeline, PipelineSpec
from repro.pipeline.shard import (
    LAYOUT_FILE,
    LAYOUT_SCHEMA,
    SHARD_EVENTS,
    ShardedStore,
    detect_layout,
    open_store,
    shard_index,
    shard_name,
)
from repro.pipeline.store import EVENTS

pytestmark = pytest.mark.smoke


def _run(store, name="delement", until="netlist"):
    return Pipeline(AnalysisContext(store=store)).run(
        PipelineSpec.from_benchmark(name), until=until
    )


# ----------------------------------------------------------------------
# Routing is a pure function of the key
# ----------------------------------------------------------------------
class TestRouting:
    def test_shard_index_is_first_digest_byte_mod_n(self):
        assert shard_index("00" + "a" * 62, 4) == 0
        assert shard_index("ff" + "a" * 62, 4) == 255 % 4
        assert shard_index("2b" + "a" * 62, 7) == 0x2B % 7

    def test_entries_land_in_their_computed_shard(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=4)
        _run(store)
        for mid, sub in enumerate(sorted(os.listdir(store.root))):
            if not sub.startswith("shard-"):
                continue
            for stage in os.listdir(os.path.join(store.root, sub)):
                stage_dir = os.path.join(store.root, sub, stage)
                for entry in os.listdir(stage_dir):
                    digest = os.path.splitext(entry)[0]
                    assert shard_name(shard_index(digest, 4)) == sub

    def test_path_for_targets_the_owning_shard(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=4)
        path = store.path_for("mc", ("fp", "bitengine"))
        digest = ArtifactStore.entry_digest("mc", ("fp", "bitengine"))
        assert shard_name(shard_index(digest, 4)) in path

    def test_same_layout_reads_across_handles(self, tmp_path):
        root = str(tmp_path / "s")
        warm = _run(ShardedStore(root, shards=3))
        second = ShardedStore(root, shards=3)
        again = _run(second)
        assert again.fingerprint == warm.fingerprint
        totals = second.totals()
        assert totals["miss"] == 0 and totals["hit"] >= 1


# ----------------------------------------------------------------------
# Pipeline parity with the flat store
# ----------------------------------------------------------------------
class TestParity:
    def test_sharded_results_match_flat(self, tmp_path):
        flat = _run(ArtifactStore(str(tmp_path / "flat")))
        sharded = _run(ShardedStore(str(tmp_path / "sh"), shards=4))
        assert sharded.fingerprint == flat.fingerprint

    def test_entry_count_preserved(self, tmp_path):
        flat = ArtifactStore(str(tmp_path / "flat"))
        sharded = ShardedStore(str(tmp_path / "sh"), shards=4)
        _run(flat)
        _run(sharded)
        assert len(sharded) == len(flat)

    def test_stats_shape_superset_of_flat(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2)
        _run(store)
        assert set(store.totals()) == set(EVENTS) | set(SHARD_EVENTS)
        by_shard = store.shard_totals()
        assert sorted(by_shard) == [shard_name(0), shard_name(1)]
        assert sum(t["put"] for t in by_shard.values()) == store.totals()["put"]


# ----------------------------------------------------------------------
# Layout marker and autodetection
# ----------------------------------------------------------------------
class TestLayout:
    def test_marker_written_and_detected(self, tmp_path):
        root = str(tmp_path / "s")
        ShardedStore(root, shards=5)
        marker = json.loads((tmp_path / "s" / LAYOUT_FILE).read_text())
        assert marker == {"schema": LAYOUT_SCHEMA, "shards": 5}
        assert detect_layout(root) == 5

    def test_open_store_defaults_flat(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "new")), ArtifactStore)

    def test_open_store_autodetects_sharded_root(self, tmp_path):
        root = str(tmp_path / "s")
        ShardedStore(root, shards=3)
        reopened = open_store(root)
        assert isinstance(reopened, ShardedStore)
        assert reopened.shards == 3

    def test_explicit_mismatch_rejected(self, tmp_path):
        root = str(tmp_path / "s")
        ShardedStore(root, shards=4)
        with pytest.raises(ValueError, match="mismatch"):
            ShardedStore(root, shards=8)

    def test_corrupt_marker_falls_back_to_directory_scan(self, tmp_path):
        root = str(tmp_path / "s")
        ShardedStore(root, shards=2)
        (tmp_path / "s" / LAYOUT_FILE).write_text("not json{")
        assert detect_layout(root) == 2  # shard-00/shard-01 still there

    def test_sharded_store_requires_a_layout_or_count(self, tmp_path):
        with pytest.raises(ValueError, match="shard count"):
            ShardedStore(str(tmp_path / "nothing"))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedStore(str(tmp_path / "s"), shards=0)
        with pytest.raises(ValueError, match="max_entries"):
            ShardedStore(str(tmp_path / "s"), shards=2, max_entries=0)
        with pytest.raises(ValueError, match="max_put_rate"):
            ShardedStore(str(tmp_path / "s"), shards=2, max_put_rate=0)


# ----------------------------------------------------------------------
# Degradation: a corrupt shard is misses, never wrong answers
# ----------------------------------------------------------------------
class TestCorruptShard:
    def test_corrupt_shard_degrades_to_counted_misses(self, tmp_path):
        root = str(tmp_path / "s")
        warm = _run(ShardedStore(root, shards=2))
        # trash every entry of every populated shard directory
        corrupted = 0
        for sub in sorted(os.listdir(root)):
            if not sub.startswith("shard-"):
                continue
            for dirpath, _, names in os.walk(os.path.join(root, sub)):
                for name in names:
                    if name.endswith(".json"):
                        with open(os.path.join(dirpath, name), "w") as handle:
                            handle.write("{torn")
                        corrupted += 1
        assert corrupted >= 1
        store = ShardedStore(root, shards=2)
        again = _run(store)
        assert again.fingerprint == warm.fingerprint  # verdict unchanged
        totals = store.totals()
        assert totals["corrupt"] == corrupted
        assert totals["hit"] == 0

    def test_foreign_files_in_root_ignored(self, tmp_path):
        root = str(tmp_path / "s")
        store = ShardedStore(root, shards=2)
        _run(store)
        (tmp_path / "s" / "README.txt").write_text("not a shard")
        assert detect_layout(root) == 2
        reopened = ShardedStore(root, shards=2)
        assert len(reopened) == len(store)


# ----------------------------------------------------------------------
# The remote read-through tier
# ----------------------------------------------------------------------
class TestRemoteTier:
    def test_remote_hits_promote_locally(self, tmp_path):
        remote_root = str(tmp_path / "remote")
        warm = _run(ArtifactStore(remote_root))  # pre-warmed flat tier
        store = ShardedStore(str(tmp_path / "local"), shards=2, remote=remote_root)
        again = _run(store)
        assert again.fingerprint == warm.fingerprint
        totals = store.totals()
        assert totals["remote-hit"] >= 1
        assert totals["promote"] == totals["remote-hit"]
        assert totals["put"] == totals["promote"]  # nothing recomputed
        # promoted entries now answer locally
        rerun_store = ShardedStore(
            str(tmp_path / "local"), shards=2, remote=str(tmp_path / "gone")
        )
        _run(rerun_store)
        assert rerun_store.totals()["hit"] >= 1
        assert rerun_store.totals()["remote-hit"] == 0

    def test_sharded_remote_autodetected(self, tmp_path):
        remote_root = str(tmp_path / "remote")
        _run(ShardedStore(remote_root, shards=3))
        store = ShardedStore(str(tmp_path / "local"), shards=2, remote=remote_root)
        _run(store)
        assert store.totals()["remote-hit"] >= 1

    def test_missing_remote_is_just_misses(self, tmp_path):
        store = ShardedStore(
            str(tmp_path / "local"), shards=2, remote=str(tmp_path / "absent")
        )
        result = _run(store)
        assert result.fingerprint
        assert store.totals()["remote-hit"] == 0


# ----------------------------------------------------------------------
# Backpressure and eviction
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_put_rate_throttles_excess_writes(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=1, max_put_rate=2)
        result = _run(store)
        assert result.fingerprint  # synthesis unaffected
        totals = store.totals()
        assert totals["put"] == 2
        assert totals["throttle"] == 3  # 5 stage artifacts - 2 allowed
        assert len(store) == 2

    def test_put_rate_accounting_visible(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2)
        _run(store)
        rates = store.put_rates()
        assert sorted(rates) == [shard_name(0), shard_name(1)]
        assert sum(rates.values()) == store.totals()["put"]

    def test_per_shard_budgets_evict_oldest_first(self, tmp_path):
        store = ShardedStore(str(tmp_path / "s"), shards=2, max_entries=2)
        _run(store)
        totals = store.totals()
        assert totals["evict"] == totals["put"] - len(store)
        assert len(store) <= 2
