"""Tests for the exact Section-VI sharing optimiser."""

import pytest

from repro.boolean.cube import Cube
from repro.core.optimize import (
    SharingError,
    cube_cost,
    optimal_region_assignment,
    total_cost,
)
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.regions import all_excitation_regions


class TestCubeCost:
    def test_single_literal_is_wire(self):
        assert cube_cost(Cube({"a": 1})) == 1

    def test_multi_literal_pays_the_gate(self):
        assert cube_cost(Cube({"a": 1, "b": 0})) == 3


class TestOptimalAssignment:
    def test_fig3_matches_paper_sharing(self, fig3):
        assignment = optimal_region_assignment(fig3)
        cubes = set(assignment.values())
        # the paper's two shared cubes must be selected
        assert Cube({"x": 0}) in cubes          # Sd shared over d+/1, d+/2
        assert Cube({"a": 1}) in cubes          # Rx shared over x-/1, x-/2

    def test_every_region_assigned_exactly_once(self, fig3):
        assignment = optimal_region_assignment(fig3)
        regions = all_excitation_regions(fig3, only_non_inputs=True)
        assert set(assignment) == set(regions)

    def test_not_worse_than_greedy(self, fig3):
        greedy = synthesize(fig3, share_gates=True)
        optimal = synthesize(fig3, share_gates="optimal")
        assert optimal.literal_count() <= greedy.literal_count()
        assert optimal.and_gate_count() <= greedy.and_gate_count()

    def test_optimal_implementation_verifies(self, fig3):
        impl = synthesize(fig3, share_gates="optimal")
        netlist = netlist_from_implementation(impl, "C")
        assert verify_speed_independence(netlist, fig3).hazard_free

    def test_raises_when_region_uncoverable(self, fig1):
        with pytest.raises(SharingError):
            optimal_region_assignment(fig1)  # fig1 violates MC

    def test_total_cost_counts_distinct_cubes_once(self):
        a = Cube({"a": 1})
        assignment = {"r1": a, "r2": a}
        assert total_cost(assignment) == cube_cost(a)


class TestOnBenchmarks:
    @pytest.mark.parametrize("name", ["delement", "berkel2", "luciano"])
    def test_optimal_beats_or_ties_greedy(self, name, pipeline):
        result = pipeline(name)
        sg = result.insertion.sg
        greedy = synthesize(sg, share_gates=True)
        optimal = synthesize(sg, share_gates="optimal")
        assert optimal.literal_count() <= greedy.literal_count()
        netlist = netlist_from_implementation(optimal, "C")
        assert verify_speed_independence(netlist, sg).hazard_free
