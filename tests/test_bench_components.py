"""Tests for the handshake component library."""

import pytest

from repro.bench.components import COMPONENTS
from repro.boolean.cube import Cube
from repro.core.mc import analyze_mc
from repro.sg.properties import is_output_semi_modular
from repro.stg.reachability import stg_to_state_graph
from repro.stg.structural import is_live_and_safe

#: expected state count and inserted-signal count per component
EXPECTED = {
    "buffer": (8, 1),
    "fork2": (20, 0),
    "join2": (20, 0),
    "sequencer": (12, 2),
    "par": (28, 2),
    "call2": (15, 2),
    "toggle2": (8, 1),
    "celement": (8, 0),
    "mutex_free_merge": (15, 2),
}


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_is_wellformed(name):
    stg = COMPONENTS[name]()
    assert is_live_and_safe(stg), name
    sg = stg_to_state_graph(stg)
    sg.check()
    assert is_output_semi_modular(sg), name
    assert len(sg) == EXPECTED[name][0], name


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_synthesises_hazard_free(name, component_result):
    result = component_result(name)
    assert result.hazard_free, name
    assert len(result.added_signals) == EXPECTED[name][1], name


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_functions_are_consistent(name, component_result):
    """Definition 13 holds for every component's excitation functions."""
    from repro.core.covers import is_consistent_excitation_function

    result = component_result(name)
    sg = result.insertion.sg
    for signal, network in result.implementation.networks.items():
        assert is_consistent_excitation_function(sg, signal, network.set_cover, +1)
        assert is_consistent_excitation_function(sg, signal, network.reset_cover, -1)


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_final_sg_has_csc(name, component_result):
    """Theorem 4 across the component zoo."""
    from repro.sg.csc import has_csc

    assert has_csc(component_result(name).insertion.sg), name


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_insertion_preserves_behaviour(name, component_result):
    from repro.sg.conformance import refines

    result = component_result(name)
    original = stg_to_state_graph(COMPONENTS[name]())
    assert refines(result.insertion.sg, original, hidden=result.added_signals)


def test_celement_spec_synthesises_to_a_celement(component_result):
    """Closing the loop on the paper's own restoring element: the
    C-element *specification* synthesises into ... one C-element."""
    result = component_result("celement")
    network = result.implementation.network("c")
    assert network.set_cover.cubes == (Cube({"a": 1, "b": 1}),)
    assert network.reset_cover.cubes == (Cube({"a": 0, "b": 0}),)
    counts = result.netlist.gate_count()
    assert counts["c"] == 1


def test_fork_join_are_mc_clean():
    for name in ("fork2", "join2", "celement"):
        sg = stg_to_state_graph(COMPONENTS[name]())
        assert analyze_mc(sg).satisfied, name


def test_choice_components_have_free_input_choice():
    from repro.stg.structural import is_free_choice

    for name in ("call2", "mutex_free_merge"):
        assert is_free_choice(COMPONENTS[name]().net), name


class TestArbitrationBoundary:
    def test_mutex_request_is_outside_the_theory(self):
        """Genuine arbitration is an internal conflict: the behaviour is
        not output semi-modular, so the paper's synthesis (rightly)
        rejects it -- real designs need a mutual-exclusion element."""
        from repro.bench.components import mutex_request
        from repro.core.insertion import InsertionError, insert_state_signals
        from repro.sg.properties import conflict_states, is_output_semi_modular

        sg = stg_to_state_graph(mutex_request())
        assert not is_output_semi_modular(sg)
        internal = conflict_states(sg, sg.non_inputs)
        assert {c.signal for c in internal} == {"g1", "g2"}
        # the insertion engine cannot (and must not) repair arbitration
        with pytest.raises(InsertionError):
            insert_state_signals(sg, max_signals=2, max_models=60)
