"""Unit tests for the Petri-net substrate."""

import pytest

from repro.stg.petrinet import PetriNet, SafenessViolation


def handshake_net():
    places = {"p0", "p1", "p2", "p3"}
    transitions = {"r+", "a+", "r-", "a-"}
    arcs = [
        ("p0", "r+"), ("r+", "p1"),
        ("p1", "a+"), ("a+", "p2"),
        ("p2", "r-"), ("r-", "p3"),
        ("p3", "a-"), ("a-", "p0"),
    ]
    return PetriNet(places, transitions, arcs)


class TestConstruction:
    def test_place_transition_overlap_rejected(self):
        with pytest.raises(ValueError):
            PetriNet({"x"}, {"x"}, [])

    def test_arc_must_be_bipartite(self):
        with pytest.raises(ValueError):
            PetriNet({"p", "q"}, {"t"}, [("p", "q")])

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            PetriNet({"p"}, {"t"}, [("p", "z")])


class TestFiring:
    def test_enabled_sorted(self):
        net = handshake_net()
        assert net.enabled(frozenset({"p0"})) == ["r+"]
        assert net.enabled(frozenset()) == []

    def test_fire_moves_token(self):
        net = handshake_net()
        after = net.fire(frozenset({"p0"}), "r+")
        assert after == frozenset({"p1"})

    def test_fire_disabled_rejected(self):
        net = handshake_net()
        with pytest.raises(ValueError):
            net.fire(frozenset({"p0"}), "a+")

    def test_safeness_violation_detected(self):
        net = PetriNet(
            {"p", "q"},
            {"t"},
            [("p", "t"), ("t", "q")],
        )
        with pytest.raises(SafenessViolation):
            net.fire(frozenset({"p", "q"}), "t")

    def test_join_requires_all_tokens(self):
        net = PetriNet(
            {"p", "q", "r"},
            {"t"},
            [("p", "t"), ("q", "t"), ("t", "r")],
        )
        assert not net.is_enabled(frozenset({"p"}), "t")
        assert net.is_enabled(frozenset({"p", "q"}), "t")
        assert net.fire(frozenset({"p", "q"}), "t") == frozenset({"r"})


class TestConnectivity:
    def test_cycle_is_connected(self):
        assert handshake_net().check_connected()

    def test_disconnected_detected(self):
        net = PetriNet({"p", "q"}, {"t"}, [("p", "t"), ("t", "p")])
        assert not net.check_connected()

    def test_empty_net_connected(self):
        assert PetriNet(set(), set(), []).check_connected()
