"""Tests for transistor-count area estimation."""


from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.synthesis import synthesize
from repro.netlist.area import area_estimate, area_report, gate_transistors
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import netlist_from_implementation


class TestGateCosts:
    def test_inverter(self):
        assert gate_transistors(Gate("y", GateKind.NOT, (("a", 1),))) == 2

    def test_buffer(self):
        assert gate_transistors(Gate("y", GateKind.BUF, (("a", 1),))) == 4

    def test_and2(self):
        gate = Gate("y", GateKind.AND, (("a", 1), ("b", 1)))
        assert gate_transistors(gate) == 6  # NAND2 + inverter

    def test_bubble_costs_extra(self):
        plain = Gate("y", GateKind.AND, (("a", 1), ("b", 1)))
        bubbled = Gate("y", GateKind.AND, (("a", 1), ("b", 0)))
        assert gate_transistors(bubbled) == gate_transistors(plain) + 2

    def test_nor2(self):
        assert gate_transistors(Gate("y", GateKind.NOR, (("a", 1), ("b", 1)))) == 4

    def test_c_element(self):
        gate = Gate("c", GateKind.C, (("s", 1), ("r", 0)))
        assert gate_transistors(gate) == 14  # 12 + reset bubble

    def test_complex_gate(self):
        cover = Cover([Cube({"a": 1, "b": 0}), Cube({"c": 1})])
        gate = Gate(
            "y", GateKind.COMPLEX, (("a", 1), ("b", 1), ("c", 1)), function=cover
        )
        assert gate_transistors(gate) == 2 * 3 + 2


class TestNetlistArea:
    def test_sharing_reduces_area(self, fig3):
        plain = netlist_from_implementation(synthesize(fig3), "C")
        shared = netlist_from_implementation(
            synthesize(fig3, share_gates="optimal"), "C"
        )
        assert area_estimate(shared) < area_estimate(plain)

    def test_complex_vs_basic_area(self, fig1):
        complex_net = complex_gate_netlist(complex_gate_synthesize(fig1))
        assert area_estimate(complex_net) > 0

    def test_report_contains_total(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        report = area_report(netlist)
        assert "TOTAL" in report
        assert str(area_estimate(netlist)) in report

    def test_rs_vs_c_latch_cost(self, fig3):
        c_style = netlist_from_implementation(synthesize(fig3), "C")
        rs_style = netlist_from_implementation(synthesize(fig3), "RS")
        # RS latches (8T) beat C elements (12T + reset bubble)
        assert area_estimate(rs_style) < area_estimate(c_style)
