"""Tests for the explicit-inverter style and delay overrides."""

from repro.core.synthesis import synthesize
from repro.netlist.gates import GateKind
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import simulate


class TestCInvStyle:
    def test_inverters_instantiated_and_shared(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
        inverters = [
            n for n, g in netlist.gates.items()
            if g.kind == GateKind.NOT and n.startswith("inv_")
        ]
        assert inverters
        # one inverter per inverted signal, shared across gates
        assert len(inverters) == len(set(inverters))
        for name, gate in netlist.gates.items():
            if gate.kind in (GateKind.AND, GateKind.OR):
                assert all(polarity == 1 for _, polarity in gate.inputs), name

    def test_latch_bubbles_stay_internal(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
        latch = netlist.gates["c"]
        assert latch.kind == GateKind.C
        assert latch.inputs[1][1] == 0  # inverted reset input kept

    def test_functionality_preserved_when_settled(self, fig3):
        plain = netlist_from_implementation(synthesize(fig3), "C")
        inv = netlist_from_implementation(synthesize(fig3), "C-INV")
        base = {s: 0 for s in ("a", "b", "c", "d", "x")}
        settled_plain = plain.settle(dict(base))
        settled_inv = inv.settle(dict(base))
        for signal in ("c", "d", "x"):
            assert settled_plain[signal] == settled_inv[signal]

    def test_unbounded_delays_hazardous(self, fig3):
        """The paper: 'the standard C-implementation will not be
        speed-independent anymore' with independent inverters."""
        netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
        # conflicts show up long before the (large) space is exhausted
        report = verify_speed_independence(netlist, fig3, max_states=20_000)
        assert report.conflicts
        assert not report.hazard_free


class TestDelayOverrides:
    def test_fast_inverters_clean(self, fig3):
        """The paper's relational bound d_inv^max < D_sn^min."""
        netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
        overrides = {
            n: (0.001, 0.01) for n in netlist.gates if n.startswith("inv_")
        }
        for seed in range(10):
            report = simulate(
                netlist,
                fig3,
                max_events=300,
                seed=seed,
                delay_overrides=overrides,
            )
            assert report.hazard_free, report.describe()

    def test_slow_inverters_glitch(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
        overrides = {
            n: (50.0, 80.0) for n in netlist.gates if n.startswith("inv_")
        }
        glitched = False
        for seed in range(30):
            report = simulate(
                netlist,
                fig3,
                max_events=300,
                seed=seed,
                gate_delay=(1.0, 5.0),
                input_delay=(1.0, 5.0),
                delay_overrides=overrides,
            )
            if report.disablings:
                glitched = True
                break
        assert glitched
