"""Unit tests for standard implementation synthesis."""

import pytest

from repro.boolean.cube import Cube
from repro.core.baseline import baseline_synthesize
from repro.core.synthesis import SynthesisError, synthesize


class TestFig3Synthesis:
    def test_equations_match_paper_shape(self, fig3):
        """Equations (2): Sc has two cubes, Rc one; Sd degenerates to a
        single literal on x (the paper's d = x wire); Sx is one cube."""
        impl = synthesize(fig3)
        c = impl.network("c")
        assert len(c.set_cover) == 2
        assert len(c.reset_cover) == 1
        d = impl.network("d")
        assert d.set_cover.cubes == (Cube({"x": 0}),)
        assert d.reset_cover.cubes == (Cube({"x": 1}),)
        assert d.is_wire
        assert d.wire_source == ("x", 0)  # d = x'
        x = impl.network("x")
        assert len(x.set_cover) == 1
        assert x.set_cover.cubes[0] == Cube({"a": 0, "b": 0, "c": 0})

    def test_wire_equation_rendering(self, fig3):
        impl = synthesize(fig3)
        assert impl.network("d").equations() == ["d = x'"]

    def test_equations_text(self, fig3):
        text = synthesize(fig3).equations()
        assert "Sc = " in text
        assert "c = C(Sc, Rc')" in text

    def test_gate_sharing_reduces_or_keeps_and_count(self, fig3):
        plain = synthesize(fig3)
        shared = synthesize(fig3, share_gates=True)
        assert shared.and_gate_count() <= plain.and_gate_count()

    def test_shared_rx_single_literal(self, fig3):
        """With sharing, the two reset regions of x fold into literal a,
        exactly the paper's x = C(Sx, a) degenerate reset."""
        shared = synthesize(fig3, share_gates=True)
        assert shared.network("x").reset_cover.cubes == (Cube({"a": 1}),)

    def test_literal_count_positive(self, fig3):
        assert synthesize(fig3).literal_count() > 0


class TestSynthesisErrors:
    def test_fig1_raises_with_report(self, fig1):
        with pytest.raises(SynthesisError) as exc:
            synthesize(fig1)
        assert not exc.value.report.satisfied

    def test_fig4_raises(self, fig4):
        with pytest.raises(SynthesisError):
            synthesize(fig4)

    def test_degenerate_rescue_can_be_disabled(self, fig3):
        # fig3 still synthesises without the degenerate rule because the
        # generalized-MC assignment covers d's regions with cube x'
        impl = synthesize(fig3, allow_degenerate=False)
        assert impl.network("d").set_cover.cubes == (Cube({"x": 0}),)


class TestToggleSynthesis:
    def test_toggle(self, toggle_sg):
        impl = synthesize(toggle_sg)
        q = impl.network("q")
        assert q.set_cover.cubes == (Cube({"r": 1}),)
        assert q.reset_cover.cubes == (Cube({"r": 0}),)
        assert q.is_wire and q.wire_source == ("r", 1)

    def test_choice_two_set_cubes(self, choice_sg):
        impl = synthesize(choice_sg)
        q = impl.network("q")
        assert len(q.set_cover) == 2  # one cube per input branch


class TestBaseline:
    def test_fig1_baseline_matches_equations_1(self, fig1):
        """Equations (1): 'two cubes are required for the correct cover'
        of Sd; Sc = a + bd' and Rd, Rc are single cubes."""
        impl = baseline_synthesize(fig1)
        d = impl.network("d")
        assert len(d.set_cover) == 2
        assert d.reset_cover.cubes == (Cube({"a": 0, "b": 0, "c": 0}),)
        c = impl.network("c")
        assert Cube({"a": 1}) in c.set_cover.cubes
        assert Cube({"b": 1, "d": 0}) in c.set_cover.cubes
        assert c.reset_cover.cubes == (Cube({"a": 0, "b": 1, "d": 1}),)

    def test_fig4_baseline_is_the_hazardous_circuit(self, fig4):
        """t = c'd; b = a + t -- accepted by the baseline, hazardous."""
        impl = baseline_synthesize(fig4)
        b = impl.network("b")
        assert set(b.set_cover.cubes) == {
            Cube({"a": 1}),
            Cube({"c": 0, "d": 1}),
        }

    def test_baseline_method_tag(self, fig4):
        assert baseline_synthesize(fig4).method == "baseline"
        assert synthesize(fig4, report=None) if False else True


class TestRegionReport:
    def test_fig3_report(self, fig3):
        report = synthesize(fig3, share_gates=True).region_report()
        assert "Sd: ER(d+/1) <- cube x' [shared]" in report
        assert "Rx: ER(x-/1) <- cube a [shared]" in report
        assert "triggers:" in report

    def test_wire_reported_degenerate(self, fig3):
        report = synthesize(fig3).region_report()
        assert "[degenerate]" in report
