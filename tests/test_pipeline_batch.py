"""Batch orchestration (`repro-si batch`) and --jobs validation."""

import json
import os

import pytest

from repro.cli import main
from repro.pipeline.batch import MANIFEST_SCHEMA, run_batch

pytestmark = pytest.mark.smoke

DATA = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "bench", "data",
)
SPECS = [os.path.join(DATA, f"{name}.g") for name in
         ("delement", "nak-pa", "mp-forward-pkt")]


# ----------------------------------------------------------------------
# The library API
# ----------------------------------------------------------------------
class TestRunBatch:
    def test_cold_then_warm_shares_store(self, tmp_path):
        store = str(tmp_path / "store")
        cold = run_batch(SPECS, store=store)
        warm = run_batch(SPECS, store=store)

        assert cold.exit_code == 0 and warm.exit_code == 0
        assert [o.status for o in warm.outcomes] == ["hazard-free"] * 3
        assert warm.stats()["store_traffic"]["miss"] == 0
        assert all(
            o.store_traffic.get("hit", 0) >= 1 for o in warm.outcomes
        )
        # the manifest is cache-state independent, byte for byte
        assert cold.manifest_text() == warm.manifest_text()

    def test_manifest_shape_and_order(self, tmp_path):
        report = run_batch(list(reversed(SPECS)), store=str(tmp_path / "s"))
        manifest = report.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        names = [entry["name"] for entry in manifest["designs"]]
        assert names == sorted(names)  # ordered by name, not input order
        entry = manifest["designs"][0]
        assert entry["status"] == "hazard-free"
        assert entry["hazard_free"] is True
        assert entry["equations"]
        assert entry["fingerprint"]
        # nondeterministic facts stay out of the manifest
        assert "seconds" not in entry and "store_traffic" not in entry

    def test_process_pool_matches_serial(self, tmp_path):
        serial = run_batch(SPECS, store=str(tmp_path / "a"))
        fanned = run_batch(SPECS, store=str(tmp_path / "b"), jobs=2)
        assert serial.manifest_text() == fanned.manifest_text()

    def test_progress_streams_every_design(self):
        seen = []
        run_batch(SPECS[:2], progress=lambda o: seen.append(o.name))
        assert sorted(seen) == sorted(
            os.path.splitext(os.path.basename(p))[0] for p in SPECS[:2]
        )

    def test_bad_design_does_not_abort_batch(self, tmp_path):
        bad = tmp_path / "broken.g"
        bad.write_text(".model broken\n.inputs a\n.end\n")
        report = run_batch([str(bad)] + SPECS[:1])
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses["broken"] == "error"
        assert statuses["delement"] == "hazard-free"
        assert report.exit_code == 1

    def test_per_design_timeout_marks_inconclusive(self):
        report = run_batch(SPECS[:1], timeout_seconds=1e-9)
        (outcome,) = report.outcomes
        assert outcome.status == "inconclusive"
        assert report.exit_code == 3

    def test_input_validation(self):
        with pytest.raises(ValueError, match="positive"):
            run_batch(SPECS, jobs=0)
        with pytest.raises(ValueError, match="no specifications"):
            run_batch([])


# ----------------------------------------------------------------------
# The CLI verb
# ----------------------------------------------------------------------
class TestBatchCli:
    def test_smoke_three_bundled_designs(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        stats = tmp_path / "stats.json"
        code = main(
            ["batch", *SPECS, "--store", str(tmp_path / "store"),
             "--manifest", str(manifest), "--stats", str(stats)]
        )
        assert code == 0
        out = capsys.readouterr()
        assert "3 design(s): 3 hazard-free" in out.out
        document = json.loads(manifest.read_text())
        assert document["schema"] == MANIFEST_SCHEMA
        assert len(document["designs"]) == 3
        traffic = json.loads(stats.read_text())["store_traffic"]
        assert traffic["miss"] == 5 * 3  # cold: every stage computed

    def test_manifest_to_stdout_by_default(self, capsys):
        code = main(["batch", SPECS[0]])
        assert code == 0
        payload = capsys.readouterr().out
        start = payload.index("{")
        document = json.loads(payload[start:])
        assert document["schema"] == MANIFEST_SCHEMA

    def test_missing_file_exits_one(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.g")])
        assert code == 1
        assert '"status": "error"' in capsys.readouterr().out


# ----------------------------------------------------------------------
# --jobs validation across verbs (exit 2, loud)
# ----------------------------------------------------------------------
class TestJobsValidation:
    @pytest.mark.parametrize("argv", [
        ["batch", "x.g", "--jobs", "0"],
        ["batch", "x.g", "--jobs", "-2"],
        ["table1", "--jobs", "0"],
        ["table1", "--jobs", "-1"],
        ["info", "x.g", "--jobs", "0"],
        ["info", "x.g", "--jobs", "banana"],
        ["synth", "x.g", "--jobs", "0"],
        ["synth", "x.g", "--jobs", "-3"],
        ["verify", "x.g", "--jobs", "0"],
        ["verify", "x.g", "--jobs", "2.5"],
        ["diff", "--count", "1", "--jobs", "0"],
        ["diff", "--count", "1", "--jobs", "-1"],
    ])
    def test_non_positive_jobs_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err or "invalid" in err

    def test_jobs_one_accepted(self, capsys):
        assert main(["batch", SPECS[0], "--jobs", "1"]) == 0

    @pytest.mark.parametrize("verb", ["synth", "verify"])
    def test_fanout_verbs_accept_jobs(self, verb, capsys):
        assert main([verb, SPECS[0], "--jobs", "2"]) == 0

    def test_diff_accepts_jobs(self, capsys):
        assert main(["diff", "--count", "1", "--jobs", "2"]) == 0
