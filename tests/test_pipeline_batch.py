"""Batch orchestration (`repro-si batch`): manifests, resume, sharding."""

import json
import os
import shutil

import pytest

from repro.cli import main
from repro.pipeline.batch import (
    JOURNAL_SUFFIX,
    MANIFEST_SCHEMA,
    BatchJournal,
    ResumeError,
    batch_options,
    run_batch,
)

pytestmark = pytest.mark.smoke

DATA = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "bench", "data",
)
SPECS = [os.path.join(DATA, f"{name}.g") for name in
         ("delement", "nak-pa", "mp-forward-pkt")]


# ----------------------------------------------------------------------
# The library API
# ----------------------------------------------------------------------
class TestRunBatch:
    def test_cold_then_warm_shares_store(self, tmp_path):
        store = str(tmp_path / "store")
        cold = run_batch(SPECS, store=store)
        warm = run_batch(SPECS, store=store)

        assert cold.exit_code == 0 and warm.exit_code == 0
        assert [o.status for o in warm.outcomes] == ["hazard-free"] * 3
        assert warm.stats()["store_traffic"]["miss"] == 0
        assert all(
            o.store_traffic.get("hit", 0) >= 1 for o in warm.outcomes
        )
        # the manifest is cache-state independent, byte for byte
        assert cold.manifest_text() == warm.manifest_text()

    def test_manifest_shape_and_order(self, tmp_path):
        report = run_batch(list(reversed(SPECS)), store=str(tmp_path / "s"))
        manifest = report.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        names = [entry["name"] for entry in manifest["designs"]]
        assert names == sorted(names)  # ordered by name, not input order
        entry = manifest["designs"][0]
        assert entry["status"] == "hazard-free"
        assert entry["hazard_free"] is True
        assert entry["equations"]
        assert entry["fingerprint"]
        # nondeterministic facts stay out of the manifest
        assert "seconds" not in entry and "store_traffic" not in entry

    def test_process_pool_matches_serial(self, tmp_path):
        serial = run_batch(SPECS, store=str(tmp_path / "a"))
        fanned = run_batch(SPECS, store=str(tmp_path / "b"), jobs=2)
        assert serial.manifest_text() == fanned.manifest_text()

    def test_progress_streams_every_design(self):
        seen = []
        run_batch(SPECS[:2], progress=lambda o: seen.append(o.name))
        assert sorted(seen) == sorted(
            os.path.splitext(os.path.basename(p))[0] for p in SPECS[:2]
        )

    def test_bad_design_does_not_abort_batch(self, tmp_path):
        bad = tmp_path / "broken.g"
        bad.write_text(".model broken\n.inputs a\n.end\n")
        report = run_batch([str(bad)] + SPECS[:1])
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses["broken"] == "error"
        assert statuses["delement"] == "hazard-free"
        assert report.exit_code == 1

    def test_per_design_timeout_marks_inconclusive(self):
        report = run_batch(SPECS[:1], timeout_seconds=1e-9)
        (outcome,) = report.outcomes
        assert outcome.status == "inconclusive"
        assert report.exit_code == 3

    def test_input_validation(self):
        with pytest.raises(ValueError, match="positive"):
            run_batch(SPECS, jobs=0)
        with pytest.raises(ValueError, match="no specifications"):
            run_batch([])


# ----------------------------------------------------------------------
# The CLI verb
# ----------------------------------------------------------------------
class TestBatchCli:
    def test_smoke_three_bundled_designs(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        stats = tmp_path / "stats.json"
        code = main(
            ["batch", *SPECS, "--store", str(tmp_path / "store"),
             "--manifest", str(manifest), "--stats", str(stats)]
        )
        assert code == 0
        out = capsys.readouterr()
        assert "3 design(s): 3 hazard-free" in out.out
        document = json.loads(manifest.read_text())
        assert document["schema"] == MANIFEST_SCHEMA
        assert len(document["designs"]) == 3
        traffic = json.loads(stats.read_text())["store_traffic"]
        assert traffic["miss"] == 5 * 3  # cold: every stage computed

    def test_manifest_to_stdout_by_default(self, capsys):
        code = main(["batch", SPECS[0]])
        assert code == 0
        payload = capsys.readouterr().out
        start = payload.index("{")
        document = json.loads(payload[start:])
        assert document["schema"] == MANIFEST_SCHEMA

    def test_missing_file_exits_one(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.g")])
        assert code == 1
        assert '"status": "error"' in capsys.readouterr().out


# ----------------------------------------------------------------------
# Sharded batch: placement-independent manifests, stealing scheduler
# ----------------------------------------------------------------------
class TestShardedBatch:
    def test_sharded_manifest_matches_flat_byte_for_byte(self, tmp_path):
        flat = run_batch(SPECS, store=str(tmp_path / "flat"))
        sharded = run_batch(
            SPECS, store=str(tmp_path / "sh"), jobs=2, shards=4
        )
        assert sharded.manifest_text() == flat.manifest_text()
        for entry in sharded.manifest()["designs"]:
            assert entry["spec_fingerprint"]
            assert entry["shard"] == entry["spec_fingerprint"][:2]

    def test_scheduler_counters_cover_every_dispatch(self, tmp_path):
        report = run_batch(SPECS, store=str(tmp_path / "s"), jobs=2, shards=4)
        scheduler = report.stats()["scheduler"]
        assert scheduler["affine"] + scheduler["steals"] == len(SPECS)
        assert scheduler["resume_skips"] == 0

    def test_stats_sidecar_has_shard_and_traffic_sections(self, tmp_path):
        report = run_batch(SPECS, store=str(tmp_path / "s"), shards=2)
        stats = report.stats()
        assert stats["shards"] == 2
        assert "evict" in stats["store_traffic"]
        assert set(stats["store_traffic_by_shard"]) <= {"shard-00", "shard-01"}
        assert sum(
            t.get("put", 0) for t in stats["store_traffic_by_shard"].values()
        ) == stats["store_traffic"]["put"]

    def test_shards_validation(self):
        with pytest.raises(ValueError, match="shards"):
            run_batch(SPECS, shards=0)


# ----------------------------------------------------------------------
# Resume: skip-if-done over manifests and journals
# ----------------------------------------------------------------------
class TestResume:
    def _cold(self, tmp_path, **kwargs):
        manifest = tmp_path / "manifest.json"
        report = run_batch(SPECS, store=str(tmp_path / "store"), **kwargs)
        manifest.write_text(report.manifest_text())
        return report, manifest

    def test_resume_skips_everything_fresh(self, tmp_path):
        cold, manifest = self._cold(tmp_path)
        resumed = run_batch(SPECS, resume=str(manifest))
        assert resumed.manifest_text() == cold.manifest_text()
        assert resumed.stats()["scheduler"]["resume_skips"] == len(SPECS)
        assert resumed.stats()["resumed_designs"] == sorted(
            o.name for o in cold.outcomes
        )
        assert resumed.stats()["store_traffic"]["miss"] == 0  # never ran

    def test_stale_spec_reruns_only_that_design(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        local = [str(corpus / os.path.basename(p)) for p in SPECS]
        for src, dst in zip(SPECS, local):
            shutil.copy(src, dst)
        cold = run_batch(local, store=str(tmp_path / "store"))
        manifest = tmp_path / "manifest.json"
        manifest.write_text(cold.manifest_text())
        # a comment edit changes the bytes (fingerprint) but nothing else
        with open(local[0], "a", encoding="utf-8") as handle:
            handle.write("# touched\n")
        resumed = run_batch(local, store=str(tmp_path / "store"),
                            resume=str(manifest))
        touched = os.path.splitext(os.path.basename(local[0]))[0]
        by_name = {o.name: o for o in resumed.outcomes}
        assert not by_name[touched].resumed
        assert all(o.resumed for n, o in by_name.items() if n != touched)
        # the re-run matches a from-scratch sweep over the edited corpus
        fresh = run_batch(local, store=str(tmp_path / "store2"))
        assert resumed.manifest_text() == fresh.manifest_text()

    def test_interrupted_sweep_resumes_from_journal(self, tmp_path):
        """Kill mid-batch, resume, merged manifest byte-identical."""
        cold = run_batch(SPECS, store=str(tmp_path / "flat"))
        manifest = tmp_path / "sweep.json"
        journal = BatchJournal(str(manifest) + JOURNAL_SUFFIX, batch_options())
        completed = []

        class Die(Exception):
            pass

        def crash_after_two(outcome):
            journal.append(outcome)
            completed.append(outcome.name)
            if len(completed) == 2:
                raise Die()

        with pytest.raises(Die):
            run_batch(SPECS, store=str(tmp_path / "sh"), shards=4,
                      progress=crash_after_two)
        journal.close()
        assert not manifest.exists()  # died before the manifest was written
        resumed = run_batch(SPECS, store=str(tmp_path / "sh"), shards=4,
                            resume=str(manifest))
        assert resumed.manifest_text() == cold.manifest_text()
        assert resumed.stats()["scheduler"]["resume_skips"] == 2

    def test_journal_tolerates_torn_tail(self, tmp_path):
        cold = run_batch(SPECS, store=str(tmp_path / "s"))
        manifest = tmp_path / "m.json"
        journal = BatchJournal(str(manifest) + JOURNAL_SUFFIX, batch_options())
        for outcome in cold.outcomes:
            journal.append(outcome)
        journal.close()
        with open(str(manifest) + JOURNAL_SUFFIX, "a") as handle:
            handle.write('{"schema": "repro-batch-jour')  # torn mid-write
        resumed = run_batch(SPECS, resume=str(manifest))
        assert resumed.manifest_text() == cold.manifest_text()

    def test_incompatible_options_rejected(self, tmp_path):
        _, manifest = self._cold(tmp_path)
        with pytest.raises(ResumeError, match="style"):
            run_batch(SPECS, resume=str(manifest), style="RS")

    def test_disjoint_corpus_rejected(self, tmp_path):
        _, manifest = self._cold(tmp_path)
        other = tmp_path / "other.g"
        shutil.copy(SPECS[0], other)
        with pytest.raises(ResumeError, match="no design names"):
            run_batch([str(other)], resume=str(manifest))

    def test_all_stale_rejected_not_silently_rerun(self, tmp_path):
        _, manifest = self._cold(tmp_path)
        document = json.loads(manifest.read_text())
        for row in document["designs"]:
            row["spec_fingerprint"] = "0" * 64
        manifest.write_text(json.dumps(document))
        with pytest.raises(ResumeError, match="stale"):
            run_batch(SPECS, resume=str(manifest))

    def test_v1_manifest_rejected(self, tmp_path):
        _, manifest = self._cold(tmp_path)
        document = json.loads(manifest.read_text())
        document["schema"] = "repro-batch-manifest/1"
        manifest.write_text(json.dumps(document))
        with pytest.raises(ResumeError, match="schema"):
            run_batch(SPECS, resume=str(manifest))

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(ResumeError, match="nothing to resume"):
            run_batch(SPECS, resume=str(tmp_path / "absent.json"))


# ----------------------------------------------------------------------
# The CLI verb: sharded + resumable end to end
# ----------------------------------------------------------------------
class TestBatchCliResume:
    def test_journal_removed_after_clean_run(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(["batch", *SPECS, "--manifest", str(manifest)]) == 0
        assert manifest.exists()
        assert not os.path.exists(str(manifest) + JOURNAL_SUFFIX)

    def test_resume_over_sharded_store(self, tmp_path, capsys):
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        stats = tmp_path / "stats.json"
        assert main(["batch", *SPECS, "--manifest", str(cold)]) == 0
        code = main(
            ["batch", *SPECS, "--store", str(tmp_path / "sh"), "--shards", "4",
             "--jobs", "2", "--resume", str(cold), "--manifest", str(warm),
             "--stats", str(stats)]
        )
        assert code == 0
        assert warm.read_text() == cold.read_text()
        sidecar = json.loads(stats.read_text())
        assert sidecar["scheduler"]["resume_skips"] == len(SPECS)
        assert "resumed" in capsys.readouterr().out

    def test_journal_only_resume(self, tmp_path, capsys):
        # as if the run died after every design but before the manifest
        report = run_batch(SPECS, store=str(tmp_path / "s"))
        manifest = tmp_path / "m.json"
        journal = BatchJournal(str(manifest) + JOURNAL_SUFFIX, batch_options())
        for outcome in report.outcomes:
            journal.append(outcome)
        journal.close()
        code = main(
            ["batch", *SPECS, "--resume", str(manifest),
             "--manifest", str(manifest)]
        )
        assert code == 0
        assert manifest.read_text() == report.manifest_text()
        assert not os.path.exists(str(manifest) + JOURNAL_SUFFIX)

    def test_cli_rejects_unusable_resume(self, tmp_path, capsys):
        code = main(["batch", *SPECS, "--resume", str(tmp_path / "no.json")])
        assert code == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_cli_rejects_shard_layout_mismatch(self, tmp_path, capsys):
        # laid out with 2 shards; --shards 3 must be a loud usage error
        # before any design runs, not a mid-run worker traceback
        store = tmp_path / "sh"
        assert main(["batch", SPECS[0], "--store", str(store),
                     "--shards", "2"]) == 0
        capsys.readouterr()
        code = main(["batch", SPECS[0], "--store", str(store),
                     "--shards", "3"])
        assert code == 2
        assert "laid out with 2 shard(s)" in capsys.readouterr().err

    def test_cli_rejects_missing_remote(self, tmp_path, capsys):
        code = main(
            ["batch", *SPECS, "--remote-store", str(tmp_path / "absent")]
        )
        assert code == 2
        assert "--remote-store" in capsys.readouterr().err

    def test_remote_tier_end_to_end(self, tmp_path, capsys):
        remote = tmp_path / "remote"
        stats = tmp_path / "stats.json"
        assert main(["batch", *SPECS, "--store", str(remote)]) == 0
        code = main(
            ["batch", *SPECS, "--store", str(tmp_path / "local"),
             "--shards", "2", "--remote-store", str(remote),
             "--stats", str(stats)]
        )
        assert code == 0
        traffic = json.loads(stats.read_text())["store_traffic"]
        assert traffic["remote-hit"] >= 1
        assert traffic["promote"] >= 1


# ----------------------------------------------------------------------
# --jobs validation across verbs (exit 2, loud)
# ----------------------------------------------------------------------
class TestJobsValidation:
    @pytest.mark.parametrize("argv", [
        ["batch", "x.g", "--jobs", "0"],
        ["batch", "x.g", "--jobs", "-2"],
        ["table1", "--jobs", "0"],
        ["table1", "--jobs", "-1"],
        ["info", "x.g", "--jobs", "0"],
        ["info", "x.g", "--jobs", "banana"],
        ["synth", "x.g", "--jobs", "0"],
        ["synth", "x.g", "--jobs", "-3"],
        ["verify", "x.g", "--jobs", "0"],
        ["verify", "x.g", "--jobs", "2.5"],
        ["diff", "--count", "1", "--jobs", "0"],
        ["diff", "--count", "1", "--jobs", "-1"],
        ["batch", "x.g", "--shards", "0"],
        ["batch", "x.g", "--shards", "-4"],
        ["batch", "x.g", "--shards", "many"],
        ["serve", "--shards", "0"],
        ["serve", "--shards", "2.5"],
    ])
    def test_non_positive_jobs_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err or "invalid" in err

    def test_jobs_one_accepted(self, capsys):
        assert main(["batch", SPECS[0], "--jobs", "1"]) == 0

    @pytest.mark.parametrize("verb", ["synth", "verify"])
    def test_fanout_verbs_accept_jobs(self, verb, capsys):
        assert main([verb, SPECS[0], "--jobs", "2"]) == 0

    def test_diff_accepts_jobs(self, capsys):
        assert main(["diff", "--count", "1", "--jobs", "2"]) == 0


# ----------------------------------------------------------------------
# Corpus-backed sweeps (--corpus): streaming generation into the batch
# ----------------------------------------------------------------------
def _fast_corpus(count=6, seed=11):
    from repro.corpus import CorpusSpec, FamilySpec

    return CorpusSpec(
        count=count,
        seed=seed,
        families=(
            FamilySpec("token_ring", params={"channels": (2, 4)}),
            FamilySpec("linear_pipeline", params={"stages": (2, 4)}),
            FamilySpec("arbiter", params={"clients": (2, 3)}),
        ),
        name_prefix="batchcorp",
    )


class TestCorpusBatch:
    def test_flat_sharded_and_resumed_manifests_identical(self, tmp_path):
        spec = _fast_corpus()
        flat = run_batch(corpus=spec, store=str(tmp_path / "a"))
        assert flat.exit_code == 0
        assert len(flat.outcomes) == spec.count

        sharded = run_batch(
            corpus=spec, store=str(tmp_path / "b"), jobs=2, shards=2
        )
        assert flat.manifest_text() == sharded.manifest_text()

        manifest = tmp_path / "corpus-manifest.json"
        manifest.write_text(flat.manifest_text())
        resumed = run_batch(
            corpus=spec, store=str(tmp_path / "a"), resume=str(manifest)
        )
        assert resumed.manifest_text() == flat.manifest_text()
        assert resumed.stats()["scheduler"]["resume_skips"] == spec.count

    def test_spec_ids_and_seed_in_stats(self, tmp_path):
        spec = _fast_corpus(count=3)
        report = run_batch(corpus=spec, store=str(tmp_path / "s"))
        assert report.stats()["seed"] == spec.seed
        for entry in report.manifest()["designs"]:
            assert entry["spec"].startswith("corpus:batchcorp-")
        # file-based sweeps have no generation seed to record
        plain = run_batch(SPECS[:1])
        assert plain.stats()["seed"] is None

    def test_corpus_and_specs_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_batch(SPECS[:1], corpus=_fast_corpus(count=1))

    def test_neither_specs_nor_corpus_rejected(self):
        with pytest.raises(ValueError, match="no specifications"):
            run_batch()

    def test_unrelated_resume_fails_loudly(self, tmp_path):
        from repro.corpus import CorpusSpec, FamilySpec

        first = run_batch(corpus=_fast_corpus(seed=11))
        manifest = tmp_path / "m.json"
        manifest.write_text(first.manifest_text())
        # disjoint design names: nothing to skip, and (only discoverable
        # post-run for a streamed corpus) that is a loud error
        other = CorpusSpec(
            count=2,
            seed=11,
            families=(FamilySpec("token_ring", params={"channels": 2}),),
            name_prefix="unrelated",
        )
        with pytest.raises(ResumeError, match="no design names"):
            run_batch(corpus=other, resume=str(manifest))

    def test_reseeded_resume_reruns_changed_designs(self, tmp_path):
        first = run_batch(corpus=_fast_corpus(seed=11))
        manifest = tmp_path / "m.json"
        manifest.write_text(first.manifest_text())
        # a different seed regenerates the stream; designs that happen to
        # coincide (same family, same sampled parameters -> same
        # fingerprint) are skipped, everything else re-runs
        resumed = run_batch(corpus=_fast_corpus(seed=12), resume=str(manifest))
        assert len(resumed.outcomes) == 6
        assert resumed.stats()["seed"] == 12


class TestCorpusBatchCli:
    def _spec_file(self, tmp_path, **overrides):
        from repro.corpus import dumps_corpus_spec

        path = tmp_path / "corpus.json"
        path.write_text(dumps_corpus_spec(_fast_corpus(**overrides)))
        return str(path)

    def test_cli_matches_library_run(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path, count=4)
        manifest = tmp_path / "manifest.json"
        stats = tmp_path / "stats.json"
        code = main([
            "batch", "--corpus", spec_path,
            "--manifest", str(manifest), "--stats", str(stats),
        ])
        assert code == 0
        library = run_batch(corpus=_fast_corpus(count=4))
        assert manifest.read_text() == library.manifest_text()
        assert json.loads(stats.read_text())["seed"] == 11

    def test_cli_seed_override_recorded(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path, count=2)
        stats = tmp_path / "stats.json"
        manifest = tmp_path / "m.json"
        code = main([
            "batch", "--corpus", spec_path, "--seed", "42",
            "--manifest", str(manifest), "--stats", str(stats),
        ])
        assert code == 0
        assert json.loads(stats.read_text())["seed"] == 42

    def test_seed_without_corpus_rejected(self, capsys):
        assert main(["batch", SPECS[0], "--seed", "1"]) == 2
        assert "--seed only applies" in capsys.readouterr().err

    def test_corpus_with_specs_rejected(self, tmp_path, capsys):
        spec_path = self._spec_file(tmp_path, count=1)
        assert main(["batch", SPECS[0], "--corpus", spec_path]) == 2

    def test_missing_corpus_file_rejected(self, capsys):
        assert main(["batch", "--corpus", "/no/such/corpus.json"]) == 2
        assert "cannot load corpus spec" in capsys.readouterr().err

    def test_malformed_corpus_file_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro-corpus-spec/1"}')
        assert main(["batch", "--corpus", str(path)]) == 2
        assert "cannot load corpus spec" in capsys.readouterr().err

    def test_no_inputs_at_all_rejected(self, capsys):
        assert main(["batch"]) == 2
        assert "no specifications" in capsys.readouterr().err
