"""Executable versions of the paper's lemmas and theorems.

Each statement is tested on the paper's figures and/or on the benchmark
suite -- sufficient-condition theorems are checked by construction and
verification, implications by exhaustively scanning the relevant
objects.
"""

import pytest

from repro.boolean.cube import Cube
from repro.core.covers import (
    covers_correctly,
    find_monotonous_cover,
    smallest_cover_cube,
)
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.builder import sg_from_arcs
from repro.sg.csc import has_csc
from repro.sg.properties import (
    detonant_states,
    is_output_semi_modular,
    is_persistent,
    non_persistent_pairs,
)
from repro.sg.regions import (
    all_excitation_regions,
    minimal_states,
    trigger_events,
)

pytestmark = pytest.mark.smoke


@pytest.fixture(scope="module")
def or_causal_sg():
    """Semi-modular but non-distributive: q+ is OR-caused by a or b."""
    return sg_from_arcs(
        ("a", "b", "q"),
        ("a", "b"),
        (0, 0, 0),
        [
            ("s0", "a+", "sa"),
            ("s0", "b+", "sb"),
            ("sa", "b+", "sab"),
            ("sb", "a+", "sab"),
            ("sa", "q+", "saq"),
            ("sb", "q+", "sbq"),
            ("sab", "q+", "sabq"),
            ("saq", "b+", "sabq"),
            ("sbq", "a+", "sabq"),
            ("sabq", "a-", "t1"),
            ("t1", "b-", "t2"),
            ("t2", "q-", "s0"),
        ],
        initial="s0",
        name="or-causal",
    )


class TestLemma1:
    def test_non_distributive_er_has_several_minimal_states(self, or_causal_sg):
        """Lemma 1: in a semi-modular but not distributive SG, some ER
        has several minimal states."""
        assert is_output_semi_modular(or_causal_sg)
        assert detonant_states(or_causal_sg)  # non-distributive
        counts = [
            len(minimal_states(or_causal_sg, er))
            for er in all_excitation_regions(or_causal_sg, only_non_inputs=True)
        ]
        assert max(counts) >= 2


class TestLemma2:
    def test_triggers_enter_at_umin(self, fig1):
        """Lemma 2: with unique entry in an output-distributive SG, the
        events entering u_min are triggers."""
        for er in all_excitation_regions(fig1, only_non_inputs=True):
            minima = minimal_states(fig1, er)
            if len(minima) != 1:
                continue
            u_min = next(iter(minima))
            entering = {
                e for e, source in fig1.arcs_into(u_min)
                if source not in er.states
            }
            assert entering <= trigger_events(fig1, er)


class TestLemma3:
    def test_smallest_cube_is_minterm_minus_concurrent(self, fig1, fig3, fig4):
        """Lemma 3: the smallest cover cube is the u_min minterm with the
        concurrent signals and the region's own signal deleted."""
        from repro.sg.regions import concurrent_signals

        for sg in (fig1, fig3, fig4):
            for er in all_excitation_regions(sg, only_non_inputs=True):
                minima = minimal_states(sg, er)
                if len(minima) != 1:
                    continue
                u_min = next(iter(minima))
                expected = Cube(
                    {
                        s: v
                        for s, v in sg.code_dict(u_min).items()
                        if s not in concurrent_signals(sg, er)
                    }
                )
                assert smallest_cover_cube(sg, er) == expected


class TestTheorem1:
    def test_correct_covers_on_all_regions_only_if_persistent(self, fig1):
        """Theorem 1: every cover cube correct => G persistent.
        Contrapositive on Figure 1: G is non-persistent, and indeed the
        non-persistent region's cover cube is incorrect."""
        assert not is_persistent(fig1)
        bad_regions = {v.er.transition_name for v in non_persistent_pairs(fig1)}
        incorrect = {
            er.transition_name
            for er in all_excitation_regions(fig1, only_non_inputs=True)
            if not covers_correctly(fig1, er, smallest_cover_cube(fig1, er))
        }
        assert bad_regions & incorrect

    def test_persistent_figures_have_correct_smallest_cubes(self, fig3, fig4):
        for sg in (fig3, fig4):
            if not is_persistent(sg):
                continue
            for er in all_excitation_regions(sg, only_non_inputs=True):
                assert covers_correctly(sg, er, smallest_cover_cube(sg, er))


class TestTheorem2:
    def test_non_distributive_region_without_mc(self, or_causal_sg):
        """Theorem 2: in a semi-modular non-distributive SG, not every ER
        can have a monotonous cover."""
        found_failure = False
        for er in all_excitation_regions(or_causal_sg, only_non_inputs=True):
            if find_monotonous_cover(or_causal_sg, er) is None:
                found_failure = True
        assert found_failure


class TestTheorem3:
    """MC cubes => both standard implementations semi-modular.

    Executed literally: synthesise every benchmark and figure that
    satisfies MC, compose with the environment, and check the circuit
    SG for gate conflicts.
    """

    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_fig3(self, fig3, style):
        netlist = netlist_from_implementation(synthesize(fig3), style)
        assert verify_speed_independence(netlist, fig3).hazard_free

    @pytest.mark.parametrize("name", ["delement", "luciano", "berkel2"])
    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_benchmarks(self, name, style, pipeline):
        result = pipeline(name)
        netlist = netlist_from_implementation(result.implementation, style)
        report = verify_speed_independence(netlist, result.insertion.sg)
        assert report.hazard_free, report.describe()


class TestTheorem4AndCorollary1:
    def test_mc_implies_csc(self, fig3, toggle_sg, choice_sg):
        """Theorem 4: MC satisfied => CSC satisfied."""
        for sg in (fig3, toggle_sg, choice_sg):
            if analyze_mc(sg).satisfied:
                assert has_csc(sg)

    def test_mc_implies_csc_on_repaired_benchmarks(self, pipeline):
        for name in ("delement", "luciano", "berkel2", "mp-forward-pkt"):
            result = pipeline(name)
            assert analyze_mc(result.insertion.sg).satisfied
            assert has_csc(result.insertion.sg)

    def test_mc_implies_persistency_of_mc_regions(self, fig3):
        """Corollary 1: MC => persistent.  Note the direction: Figure 4
        shows persistency does NOT imply MC."""
        assert analyze_mc(fig3).satisfied
        assert is_persistent(fig3)

    def test_persistency_does_not_imply_mc(self, fig4):
        assert is_persistent(fig4)
        assert not analyze_mc(fig4).satisfied
