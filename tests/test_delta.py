"""SpecDelta: the first-class STG edit vocabulary of delta re-synthesis."""

import pytest

from repro.corpus import token_ring
from repro.bench.suite import load_benchmark
from repro.pipeline import PipelineSpec
from repro.pipeline.delta import (
    AddEdge,
    DeltaError,
    RemoveEdge,
    RetypeSignal,
    SetMarking,
    SpecDelta,
)

pytestmark = pytest.mark.smoke


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class TestParse:
    def test_all_verbs(self):
        delta = SpecDelta.parse(
            "add a+ b-\ndrop c+ d-\nretype x internal\nmarking p1 p2"
        )
        assert delta.ops == (
            AddEdge("a+", "b-"),
            RemoveEdge("c+", "d-"),
            RetypeSignal("x", "internal"),
            SetMarking(("p1", "p2")),
        )

    def test_list_of_lines_equals_multiline_text(self):
        text = SpecDelta.parse("add a+ b-\nretype x output")
        as_list = SpecDelta.parse(["add a+ b-", "retype x output"])
        assert text.ops == as_list.ops

    def test_add_marked(self):
        delta = SpecDelta.parse("add a+ b- marked")
        assert delta.ops == (AddEdge("a+", "b-", marked=True),)

    def test_blank_lines_skipped(self):
        delta = SpecDelta.parse("\n  add a+ b-  \n\n")
        assert len(delta.ops) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate a+ b-",
            "add a+",
            "add a+ b- extra",
            "drop a+ b- c-",
            "retype x sideways",
            "marking",
            "add notatransition b-",
        ],
    )
    def test_rejects_malformed_lines(self, bad):
        with pytest.raises(DeltaError):
            SpecDelta.parse(bad)

    def test_empty_delta_rejected(self):
        with pytest.raises(DeltaError, match="at least one"):
            SpecDelta.parse("")

    def test_bad_role_in_constructor(self):
        with pytest.raises(DeltaError, match="role"):
            RetypeSignal("x", "sideways")


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
class TestJson:
    def test_round_trip(self):
        delta = SpecDelta.parse(
            "add a+ b- marked\ndrop c+ d-\nretype x input\nmarking p0"
        )
        again = SpecDelta.from_json(delta.to_json())
        assert again.ops == delta.ops
        assert again.to_json() == delta.to_json()

    def test_unmarked_add_omits_marked_key(self):
        assert AddEdge("a+", "b-").to_json() == {
            "op": "add",
            "source": "a+",
            "target": "b-",
        }

    @pytest.mark.parametrize(
        "bad",
        [
            "not an object",
            {},
            {"ops": "not a list"},
            {"ops": [{"op": "teleport"}]},
            {"ops": [{"op": "add", "source": "a+"}]},
            {"ops": [{"op": "marking", "places": []}]},
            {"ops": ["not an op object"]},
        ],
    )
    def test_rejects_malformed_json(self, bad):
        with pytest.raises(DeltaError):
            SpecDelta.from_json(bad)

    def test_describe_mentions_every_op(self):
        delta = SpecDelta.parse("add a+ b- marked\nretype x internal")
        text = delta.describe()
        assert "add a+ b- marked" in text
        assert "retype x internal" in text


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------
class TestApply:
    def test_add_edge_creates_fresh_place(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        edited = SpecDelta((AddEdge(ts[0], ts[1]),)).apply_to_stg(stg)
        new_places = edited.net.places - stg.net.places
        assert len(new_places) == 1
        place = next(iter(new_places))
        assert place in edited.net.postset[ts[0]]
        assert place in edited.net.preset[ts[1]]
        assert place not in edited.initial_marking

    def test_add_marked_edge_tokens_the_place(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        edited = SpecDelta((AddEdge(ts[0], ts[1], marked=True),)).apply_to_stg(stg)
        place = next(iter(edited.net.places - stg.net.places))
        assert place in edited.initial_marking

    def test_drop_inverts_add(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        added = SpecDelta((AddEdge(ts[0], ts[1]),)).apply_to_stg(stg)
        dropped = SpecDelta((RemoveEdge(ts[0], ts[1]),)).apply_to_stg(added)
        assert dropped.net.places == stg.net.places
        assert dropped.net.preset == stg.net.preset
        assert dropped.net.postset == stg.net.postset

    def test_retype_moves_partition(self):
        stg = load_benchmark("nowick")
        edited = SpecDelta((RetypeSignal("y", "internal"),)).apply_to_stg(stg)
        assert "y" in edited.internal
        assert "y" not in edited.outputs
        # signals are re-sorted by partition, the set is unchanged
        assert set(edited.signals) == set(stg.signals)

    def test_set_marking(self):
        stg = token_ring(2)
        place = next(iter(stg.initial_marking))
        edited = SpecDelta((SetMarking((place,)),)).apply_to_stg(stg)
        assert edited.initial_marking == frozenset({place})

    def test_ops_apply_in_order(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        delta = SpecDelta((AddEdge(ts[0], ts[1]), RemoveEdge(ts[0], ts[1])))
        edited = delta.apply_to_stg(stg)
        assert edited.net.places == stg.net.places

    def test_unknown_transition_rejected(self):
        stg = token_ring(2)
        with pytest.raises(DeltaError, match="not in the STG"):
            SpecDelta((AddEdge("zz+", sorted(stg.net.transitions)[0]),)).apply_to_stg(stg)

    def test_drop_missing_edge_rejected(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        with pytest.raises(DeltaError, match="no place connects"):
            SpecDelta((RemoveEdge(ts[0], ts[0]),)).apply_to_stg(stg)

    def test_retype_unknown_signal_rejected(self):
        stg = token_ring(2)
        with pytest.raises(DeltaError, match="unknown signal"):
            SpecDelta((RetypeSignal("ghost", "internal"),)).apply_to_stg(stg)

    def test_marking_unknown_place_rejected(self):
        stg = token_ring(2)
        with pytest.raises(DeltaError, match="unknown places"):
            SpecDelta((SetMarking(("ghost",)),)).apply_to_stg(stg)

    def test_dirty_transitions(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        delta = SpecDelta((AddEdge(ts[0], ts[1]),))
        edited = delta.apply_to_stg(stg)
        assert delta.dirty_transitions(stg, edited) == frozenset({ts[0], ts[1]})
        retype = SpecDelta((RetypeSignal(stg.signals[0], "internal"),))
        retyped = retype.apply_to_stg(stg)
        assert retype.dirty_transitions(stg, retyped) == frozenset()

    def test_fresh_place_name_avoids_collision(self):
        stg = token_ring(2)
        ts = sorted(stg.net.transitions)
        once = SpecDelta((AddEdge(ts[0], ts[1]),)).apply_to_stg(stg)
        twice = SpecDelta((AddEdge(ts[0], ts[1]),)).apply_to_stg(once)
        fresh = twice.net.places - stg.net.places
        assert len(fresh) == 2


# ----------------------------------------------------------------------
# PipelineSpec.apply_delta
# ----------------------------------------------------------------------
class TestSpecApplyDelta:
    def test_accepts_text_json_and_object(self):
        spec = PipelineSpec.from_stg(token_ring(2))
        ts = sorted(spec.stg.net.transitions)
        delta = SpecDelta((AddEdge(ts[0], ts[1]),))
        by_object = spec.apply_delta(delta)
        by_text = spec.apply_delta(f"add {ts[0]} {ts[1]}")
        by_json = spec.apply_delta(delta.to_json())
        assert (
            by_object.stg.net.places
            == by_text.stg.net.places
            == by_json.stg.net.places
        )

    def test_needs_stg_based_spec(self):
        from repro.stg.reachability import stg_to_state_graph

        sg = stg_to_state_graph(token_ring(2))
        spec = PipelineSpec.from_state_graph(sg)
        with pytest.raises(ValueError, match="STG-based"):
            spec.apply_delta("retype a0 internal")

    def test_options_preserved(self):
        spec = PipelineSpec.from_stg(token_ring(2), style="RS", max_models=7)
        edited = spec.apply_delta("retype a0 internal")
        assert edited.style == "RS"
        assert edited.max_models == 7
