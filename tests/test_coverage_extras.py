"""Additional coverage: RS-style simulation, nondeterministic specs,
insertion determinism, and miscellaneous reporting paths."""


from repro.core.insertion import insert_state_signals
from repro.core.synthesis import synthesize
from repro.netlist.circuit_sg import build_circuit_state_graph
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import simulate


class TestRSSimulation:
    def test_rs_style_simulates_cleanly(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "RS")
        for seed in range(5):
            report = simulate(netlist, fig3, max_events=300, seed=seed)
            assert report.hazard_free, report.describe()

    def test_rs_nor_style_simulates(self, fig3):
        # the discrete NOR pair is statically hazardous; simulation with
        # default symmetric delays may or may not hit the race -- the
        # point here is only that the engine handles feedback loops
        netlist = netlist_from_implementation(synthesize(fig3), "RS-NOR")
        report = simulate(netlist, fig3, max_events=200, seed=0)
        assert report.fired_events > 0


class TestNondeterministicSpec:
    def test_same_code_choice_composes(self, choice_sg):
        """choice_sg has two distinct states with one code; composition
        must track the spec state, not the code."""
        impl = synthesize(choice_sg)
        netlist = netlist_from_implementation(impl, "C")
        composition = build_circuit_state_graph(netlist, choice_sg)
        assert not composition.conformance_failures


class TestInsertionDeterminism:
    def test_same_budgets_same_result(self, fig1):
        first = insert_state_signals(fig1, max_models=200)
        second = insert_state_signals(fig1, max_models=200)
        assert first.added_signals == second.added_signals
        assert first.rounds[0].labelling == second.rounds[0].labelling
        assert sorted(map(str, first.sg.states)) == sorted(
            map(str, second.sg.states)
        )


class TestDescribePaths:
    def test_insertion_describe_no_signals(self, fig3):
        result = insert_state_signals(fig3)
        assert "no state signals inserted" in result.describe()

    def test_mc_report_describe_satisfied(self, fig3):
        from repro.core.mc import analyze_mc

        assert "SATISFIED" in analyze_mc(fig3).describe()

    def test_refinement_result_bool(self, toggle_sg):
        from repro.sg.conformance import refines

        verdict = refines(toggle_sg, toggle_sg)
        assert bool(verdict) is True


class TestMultiTargetFire:
    def test_fire_with_duplicate_events(self):
        # two arcs with the same event from one state (nondeterminism)
        from repro.sg.events import SignalEvent
        from repro.sg.graph import StateGraph

        sg = StateGraph(
            ("a", "b"),
            ("a",),
            {
                "s0": (0, 0),
                "t1": (1, 0),
                "u": (1, 1),
                "v0": (0, 1),
            },
            [
                ("s0", SignalEvent.rise("a"), "t1"),
                ("t1", SignalEvent.rise("b"), "u"),
                ("u", SignalEvent.fall("a"), "v0"),
                ("v0", SignalEvent.fall("b"), "s0"),
            ],
            "s0",
        )
        assert sg.fire("s0", SignalEvent.rise("a")) == ["t1"]
        assert sg.fire("s0", SignalEvent.fall("a")) == []
