"""Unit tests for parallel composition of state graphs."""

import pytest

from repro.sg.builder import sg_from_arcs
from repro.sg.compose import CompositionDeadlock, compose
from repro.sg.graph import InconsistentStateGraph
from repro.sg.properties import is_output_semi_modular


def handshake(req, ack, req_is_input):
    """A single 4-phase handshake; `req` drives `ack`."""
    inputs = (req,) if req_is_input else (ack,)
    return sg_from_arcs(
        (req, ack),
        inputs,
        (0, 0),
        [
            ("h0", f"{req}+", "h1"),
            ("h1", f"{ack}+", "h2"),
            ("h2", f"{req}-", "h3"),
            ("h3", f"{ack}-", "h0"),
        ],
        initial="h0",
        name=f"hs_{req}",
    )


class TestBasicComposition:
    def test_two_stage_pipeline(self):
        """Stage 1 produces m (acknowledging r); stage 2 acknowledges m
        with a.  Shared signal m synchronises the two."""
        stage1 = sg_from_arcs(
            ("r", "m"),
            ("r",),
            (0, 0),
            [
                ("s0", "r+", "s1"),
                ("s1", "m+", "s2"),
                ("s2", "r-", "s3"),
                ("s3", "m-", "s0"),
            ],
            initial="s0",
            name="stage1",
        )
        stage2 = handshake("m", "a", req_is_input=True)
        system = compose(stage1, stage2)
        assert set(system.signals) == {"r", "m", "a"}
        assert system.inputs == frozenset({"r"})  # m is driven by stage1
        assert "m" in system.non_inputs
        system.check()
        assert is_output_semi_modular(system)

    def test_private_signals_interleave(self):
        left = handshake("r1", "a1", req_is_input=True)
        right = handshake("r2", "a2", req_is_input=True)
        system = compose(left, right)
        # fully independent: state count multiplies
        assert len(system) == len(left) * len(right)

    def test_shared_signal_synchronises(self):
        left = handshake("r", "a", req_is_input=True)
        right = handshake("r", "b", req_is_input=True)
        system = compose(left, right)
        # r+ advances both components at once
        targets = system.fire(system.initial, __import__("repro.sg.events", fromlist=["SignalEvent"]).SignalEvent.rise("r"))
        assert len(targets) == 1

    def test_composite_name(self):
        left = handshake("r", "a", req_is_input=True)
        right = handshake("r", "b", req_is_input=True)
        assert compose(left, right).name == "hs_r||hs_r"
        assert compose(left, right, name="sys").name == "sys"


class TestValidation:
    def test_initial_disagreement_rejected(self):
        left = handshake("r", "a", req_is_input=True)
        right = sg_from_arcs(
            ("r", "b"),
            ("b",),
            (1, 0),
            [
                ("t0", "r-", "t1"),
                ("t1", "b+", "t2"),
                ("t2", "r+", "t3"),
                ("t3", "b-", "t0"),
            ],
            initial="t0",
            name="other",
        )
        with pytest.raises(InconsistentStateGraph):
            compose(left, right)

    def test_double_driver_rejected(self):
        left = handshake("r", "a", req_is_input=True)   # drives a
        right = handshake("b", "a", req_is_input=True)  # also drives a
        with pytest.raises(InconsistentStateGraph):
            compose(left, right)

    def test_deadlock_detected(self):
        # left wants q+ then p+; right (driving nothing) only accepts
        # p+ then q+ -- the shared orders conflict and nobody can move
        left = sg_from_arcs(
            ("p", "q"),
            ("p",),
            (0, 0),
            [
                ("l0", "q+", "l1"),
                ("l1", "p+", "l2"),
                ("l2", "q-", "l3"),
                ("l3", "p-", "l0"),
            ],
            initial="l0",
            name="left",
        )
        right = sg_from_arcs(
            ("p", "q"),
            ("p", "q"),
            (0, 0),
            [
                ("r0", "p+", "r1"),
                ("r1", "q+", "r2"),
                ("r2", "p-", "r3"),
                ("r3", "q-", "r0"),
            ],
            initial="r0",
            name="right",
        )
        with pytest.raises(CompositionDeadlock):
            compose(left, right)
        system = compose(left, right, allow_deadlock=True)
        assert len(system) == 1  # only the stuck initial state
