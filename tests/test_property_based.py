"""Property-based tests (hypothesis) for core data structures and invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.minimize import minimize_onset
from repro.core.insertion import expand_with_signal, labelling_from_partition, project_away
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sg.builder import sg_from_arcs
from repro.sg.properties import is_output_semi_modular

SIGNALS = ("a", "b", "c")


def all_codes():
    return [dict(zip(SIGNALS, bits)) for bits in itertools.product((0, 1), repeat=3)]


cube_strategy = st.dictionaries(
    st.sampled_from(SIGNALS), st.integers(0, 1), max_size=3
).map(Cube)


class TestCubeProperties:
    @given(cube_strategy, cube_strategy)
    def test_intersection_semantics(self, x, y):
        both = x.intersect(y)
        for code in all_codes():
            point_in_both = x.covers(code) and y.covers(code)
            if both is None:
                assert not point_in_both
            else:
                assert both.covers(code) == point_in_both

    @given(cube_strategy, cube_strategy)
    def test_containment_semantics(self, x, y):
        if x.contains(y):
            for code in all_codes():
                if y.covers(code):
                    assert x.covers(code)

    @given(cube_strategy, cube_strategy)
    def test_supercube_covers_both(self, x, y):
        sup = x.supercube(y)
        for code in all_codes():
            if x.covers(code) or y.covers(code):
                assert sup.covers(code)

    @given(cube_strategy)
    def test_evaluator_matches_covers(self, cube):
        evaluate = cube.evaluator(SIGNALS)
        for code in all_codes():
            vector = tuple(code[s] for s in SIGNALS)
            assert evaluate(vector) == cube.covers(code)

    @given(st.lists(cube_strategy, max_size=4))
    def test_cover_is_disjunction(self, cubes):
        cover = Cover(cubes)
        for code in all_codes():
            assert cover.covers(code) == any(c.covers(code) for c in cubes)


class TestMinimizeProperties:
    @given(st.sets(st.integers(0, 7)), st.sets(st.integers(0, 7)))
    @settings(max_examples=60, deadline=None)
    def test_minimized_cover_equivalent(self, on, dc):
        dc = dc - on
        codes = all_codes()
        on_codes = [codes[i] for i in sorted(on)]
        dc_codes = [codes[i] for i in sorted(dc)]
        cover = minimize_onset(SIGNALS, on_codes, dc_codes)
        for i, code in enumerate(codes):
            value = cover.covers(code)
            if i in on:
                assert value
            elif i not in dc:
                assert not value


class TestSATProperties:
    @given(
        st.integers(2, 5).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(1, n).flatmap(
                            lambda v: st.sampled_from([v, -v])
                        ),
                        min_size=1,
                        max_size=3,
                    ),
                    max_size=12,
                ),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_solver_sound_and_complete(self, instance):
        num_vars, clauses = instance
        clauses = [tuple(c) for c in clauses]
        model = Solver(num_vars, clauses).solve()
        brute = any(
            all(
                any((bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]) for l in c)
                for c in clauses
            )
            for bits in itertools.product((False, True), repeat=num_vars)
        )
        assert (model is not None) == brute
        if model is not None:
            for clause in clauses:
                assert any(
                    (model[abs(l)] if l > 0 else not model[abs(l)]) for l in clause
                )

    @given(st.integers(1, 8), st.integers(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_at_most_k_exact_boundary(self, n, k):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(n)]
        cnf.at_most_k(vs, k)
        # forcing min(n, k) variables true stays SAT
        for v in vs[: min(n, k)]:
            cnf.add(v)
        assert Solver.from_cnf(cnf).solve() is not None
        if k < n:
            cnf.add(vs[k])
            assert Solver.from_cnf(cnf).solve() is None


def _random_cycle_sg(order):
    """A state graph from a random interleaving of signal sequences."""
    events = []
    for signal, toggles in order:
        events.extend([f"{signal}{'+' if i % 2 == 0 else '-'}" for i in range(toggles)])
    arcs = [
        (f"s{i}", event, f"s{(i + 1) % len(events)}")
        for i, event in enumerate(events)
    ]
    return sg_from_arcs(
        ("p", "q"),
        ("p",),
        (0, 0),
        arcs,
        initial="s0",
        name="random-cycle",
    )


class TestExpansionProperties:
    @given(st.sets(st.integers(0, 3), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_partition_expansion_projects_back(self, one_side):
        sg = sg_from_arcs(
            ("p", "q"),
            ("p",),
            (0, 0),
            [
                ("s0", "p+", "s1"),
                ("s1", "q+", "s2"),
                ("s2", "p-", "s3"),
                ("s3", "q-", "s0"),
            ],
            initial="s0",
            name="toggle",
        )
        partition = {f"s{i}": (1 if i in one_side else 0) for i in range(4)}
        labelling = labelling_from_partition(sg, partition)
        if labelling is None:
            return
        expanded = expand_with_signal(sg, labelling, "x")
        # invariant 1: the expansion is a consistent state graph
        expanded.check()
        # invariant 2: hiding x restores the original behaviour
        projected = project_away(expanded, "x")
        original = {
            (sg.code(s), str(e), sg.code(t)) for s, e, t in sg.arcs()
        }
        back = {
            (projected.code(s), str(e), projected.code(t))
            for s, e, t in projected.arcs()
        }
        assert original == back
        # invariant 3: expansion never breaks output semi-modularity of a
        # semi-modular original (x conflicts excepted -- checked on all)
        assert is_output_semi_modular(projected) == is_output_semi_modular(sg)
