"""Unit tests for the random-delay discrete-event simulator."""


from repro.core.baseline import baseline_synthesize
from repro.core.synthesis import synthesize
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import monte_carlo, simulate


class TestBasicRuns:
    def test_toggle_runs_cleanly(self, toggle_sg):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        report = simulate(netlist, toggle_sg, max_events=200, seed=1)
        assert report.hazard_free
        assert report.fired_events == 200  # the loop keeps cycling

    def test_deterministic_given_seed(self, toggle_sg):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        first = simulate(netlist, toggle_sg, max_events=100, seed=7)
        second = simulate(netlist, toggle_sg, max_events=100, seed=7)
        assert first.fired_events == second.fired_events
        assert len(first.disablings) == len(second.disablings)

    def test_report_describe(self, toggle_sg):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        report = simulate(netlist, toggle_sg, max_events=10, seed=0)
        assert "clean" in report.describe()

    def test_choice_environment_is_benign(self, choice_sg):
        """Input choice resolution (a wins over b) must not be recorded
        as a hazard."""
        netlist = netlist_from_implementation(synthesize(choice_sg), "C")
        report = simulate(netlist, choice_sg, max_events=300, seed=3)
        assert report.hazard_free


class TestHazardDetection:
    def test_mc_implementation_never_glitches(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        for report in monte_carlo(netlist, fig3, runs=10, max_events=400):
            assert report.hazard_free, report.describe()

    def test_fig4_baseline_glitches_under_slow_gates(self, fig4):
        """The dynamic face of Example 2: with slow gates and a fast
        environment, the c'd AND gate's pending rise gets withdrawn."""
        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        hazards = []
        for seed in range(40):
            report = simulate(
                netlist,
                fig4,
                max_events=400,
                seed=seed,
                gate_delay=(1.0, 30.0),
                input_delay=(1.0, 5.0),
            )
            hazards += report.disablings
        assert hazards, "expected the Example-2 race to show up"
        assert any(d.gate == "and_b_0" for d in hazards)

    def test_repaired_fig4_clean_under_same_delays(self, fig4):
        from repro.core.insertion import insert_state_signals

        result = insert_state_signals(fig4, max_models=400)
        netlist = netlist_from_implementation(synthesize(result.sg), "C")
        for seed in range(20):
            report = simulate(
                netlist,
                result.sg,
                max_events=400,
                seed=seed,
                gate_delay=(1.0, 30.0),
                input_delay=(1.0, 5.0),
            )
            assert report.hazard_free, report.describe()


class TestMonteCarlo:
    def test_distinct_seeds(self, toggle_sg):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        reports = monte_carlo(netlist, toggle_sg, runs=5, max_events=50)
        assert len(reports) == 5
        assert len({r.seed for r in reports}) == 5
