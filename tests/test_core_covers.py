"""Unit tests for cover cubes and monotonous covers (Defs. 15-17, 19)."""


from repro.boolean.cube import Cube
from repro.core.covers import (
    check_generalized_mc,
    check_monotonous_cover,
    covers_correctly,
    find_correct_cover_cubes,
    find_generalized_monotonous_cover,
    find_monotonous_cover,
    find_region_cover_assignment,
    is_cover_cube,
    smallest_cover_cube,
)
from repro.sg.regions import excitation_regions


def er_of(sg, signal, direction, index=1):
    for er in excitation_regions(sg, signal):
        if er.direction == direction and er.index == index:
            return er
    raise AssertionError


class TestSmallestCoverCube:
    def test_lemma3_er_d_plus_1(self, fig1):
        """Lemma 3 on ER(+d1): ordered = {b} only, so the smallest cover
        cube is the single literal b'."""
        er = er_of(fig1, "d", +1, 1)
        assert smallest_cover_cube(fig1, er) == Cube({"b": 0})

    def test_lemma3_er_d_minus(self, fig1):
        er = er_of(fig1, "d", -1, 1)
        assert smallest_cover_cube(fig1, er) == Cube({"a": 0, "b": 0, "c": 0})

    def test_fig4_cube_a_for_er_b_plus_1(self, fig4):
        """The paper: ER(+b,1) is covered by cube a."""
        er = er_of(fig4, "b", +1, 1)
        assert smallest_cover_cube(fig4, er) == Cube({"a": 1})

    def test_fig4_cube_cd_for_er_b_plus_2(self, fig4):
        """The paper: ER(+b,2) is covered by cube c'd."""
        er = er_of(fig4, "b", +1, 2)
        assert smallest_cover_cube(fig4, er) == Cube({"c": 0, "d": 1})


class TestIsCoverCube:
    def test_sub_literal_sets_are_cover_cubes(self, fig1):
        er = er_of(fig1, "d", -1, 1)
        assert is_cover_cube(fig1, er, Cube({"a": 0}))
        assert is_cover_cube(fig1, er, Cube())

    def test_wrong_polarity_rejected(self, fig1):
        er = er_of(fig1, "d", -1, 1)
        assert not is_cover_cube(fig1, er, Cube({"a": 1}))

    def test_concurrent_signal_rejected(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        assert not is_cover_cube(fig1, er, Cube({"a": 1}))  # a concurrent


class TestCorrectCovering:
    def test_b_prime_not_correct_for_er_d_plus_1(self, fig1):
        """b' covers the stable-0 states 0000/0001 side: not correct."""
        er = er_of(fig1, "d", +1, 1)
        assert not covers_correctly(fig1, er, Cube({"b": 0}))

    def test_paper_baseline_cubes_are_correct(self, fig1):
        """Equations (1): a b' and b' c correctly cover ER(+d1)."""
        er = er_of(fig1, "d", +1, 1)
        assert covers_correctly(fig1, er, Cube({"a": 1, "b": 0}))
        assert covers_correctly(fig1, er, Cube({"b": 0, "c": 1}))

    def test_fig4_cube_a_is_correct_yet_not_mc(self, fig4):
        """Example 2's crux: cube a passes the correctness conditions but
        also covers state 10*01 of ER(+b,2)."""
        er1 = er_of(fig4, "b", +1, 1)
        cube = Cube({"a": 1})
        assert covers_correctly(fig4, er1, cube)
        diagnostics = check_monotonous_cover(fig4, er1, cube)
        assert not diagnostics.is_mc
        assert "s1001" in diagnostics.outside_cfr

    def test_find_correct_cover_needs_two_cubes(self, fig1):
        """The paper: 'it is impossible to cover ER(+d) with one cube --
        two cubes are required for the correct cover'."""
        er = er_of(fig1, "d", +1, 1)
        cubes = find_correct_cover_cubes(fig1, er)
        assert cubes is not None and len(cubes) == 2
        for state in er.states:
            assert any(c.covers(fig1.code_dict(state)) for c in cubes)
        for cube in cubes:
            assert covers_correctly(fig1, er, cube)


class TestMonotonousCover:
    def test_no_mc_for_er_d_plus_1(self, fig1):
        assert find_monotonous_cover(fig1, er_of(fig1, "d", +1, 1)) is None

    def test_mc_found_for_er_d_minus(self, fig1):
        cube = find_monotonous_cover(fig1, er_of(fig1, "d", -1, 1))
        assert cube == Cube({"a": 0, "b": 0, "c": 0})

    def test_mc_diagnostics_fields(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        diag = check_monotonous_cover(fig1, er, Cube({"b": 0}))
        assert diag.covers_all_er
        assert diag.outside_cfr  # 0000 and 0001
        assert not diag.is_mc

    def test_monotonicity_violation_witness(self, fig3):
        """Cube ax' rises inside CFR(c+) on the b-branch (the trace
        enters the quiescent region from a foreign path): the no-rise
        check must flag it with a witness edge."""
        er = next(
            e
            for e in excitation_regions(fig3, "c")
            if e.direction == 1 and "10000" in e.states
        )
        diag = check_monotonous_cover(fig3, er, Cube({"a": 1, "x": 0}))
        assert not diag.monotonous
        assert diag.change_witness is not None

    def test_mc_cube_in_fig3(self, fig3):
        """Equations (2): Sx = a'b'c' (.d) is the MC cube of ER(+x)."""
        er = er_of(fig3, "x", +1, 1)
        cube = find_monotonous_cover(fig3, er)
        assert cube == Cube({"a": 0, "b": 0, "c": 0})


class TestGeneralizedMC:
    def test_sd_shared_cube_in_fig3(self, fig3):
        """Sd = x' is one cube serving both up-regions of d (Def. 19)."""
        ups = [e for e in excitation_regions(fig3, "d") if e.direction == 1]
        assert len(ups) == 2
        cube = find_generalized_monotonous_cover(fig3, ups)
        assert cube == Cube({"x": 0})
        assert check_generalized_mc(fig3, ups, cube)

    def test_rx_shared_literal_a(self, fig3):
        """Equations (2): the reset of x is the single literal a, shared
        by ER(-x,1) and ER(-x,2)."""
        downs = [e for e in excitation_regions(fig3, "x") if e.direction == -1]
        assert len(downs) == 2
        cube = Cube({"a": 1})
        assert check_generalized_mc(fig3, downs, cube)

    def test_generalized_mc_rejects_wrong_cube(self, fig3):
        ups = [e for e in excitation_regions(fig3, "d") if e.direction == 1]
        assert not check_generalized_mc(fig3, ups, Cube({"x": 1}))
        assert not check_generalized_mc(fig3, [], Cube({"x": 0}))

    def test_region_cover_assignment_fig3_d(self, fig3):
        ups = [e for e in excitation_regions(fig3, "d") if e.direction == 1]
        assignment = find_region_cover_assignment(fig3, ups)
        assert assignment is not None
        assert set(assignment.values()) == {Cube({"x": 0})}

    def test_region_cover_assignment_prefers_private(self, fig1):
        downs = [e for e in excitation_regions(fig1, "d") if e.direction == -1]
        assignment = find_region_cover_assignment(fig1, downs)
        assert assignment == {downs[0]: Cube({"a": 0, "b": 0, "c": 0})}

    def test_region_cover_assignment_none_when_impossible(self, fig1):
        ups = [e for e in excitation_regions(fig1, "d") if e.direction == 1]
        assert find_region_cover_assignment(fig1, ups) is None
