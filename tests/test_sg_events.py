"""Unit tests for signal events."""

import pytest

from repro.sg.events import SignalEvent


def test_constructor_validates_direction():
    with pytest.raises(ValueError):
        SignalEvent("a", 2)


def test_constructor_validates_name():
    with pytest.raises(ValueError):
        SignalEvent("", 1)


def test_rise_fall_helpers():
    assert SignalEvent.rise("a") == SignalEvent("a", 1)
    assert SignalEvent.fall("a") == SignalEvent("a", -1)


@pytest.mark.parametrize(
    "text,signal,direction",
    [
        ("a+", "a", 1),
        ("a-", "a", -1),
        ("+a", "a", 1),
        ("-a", "a", -1),
        ("req+", "req", 1),
    ],
)
def test_parse(text, signal, direction):
    event = SignalEvent.parse(text)
    assert event.signal == signal and event.direction == direction


@pytest.mark.parametrize("text", ["a", "", "+", "ab", "a*"])
def test_parse_rejects(text):
    with pytest.raises(ValueError):
        SignalEvent.parse(text)


def test_values_before_after():
    rise = SignalEvent.rise("a")
    assert rise.value_before == 0 and rise.value_after == 1
    fall = SignalEvent.fall("a")
    assert fall.value_before == 1 and fall.value_after == 0


def test_inverse():
    assert SignalEvent.rise("a").inverse() == SignalEvent.fall("a")


def test_str_roundtrip():
    for event in (SignalEvent.rise("a"), SignalEvent.fall("b")):
        assert SignalEvent.parse(str(event)) == event


def test_ordering_is_total():
    events = sorted([SignalEvent("b", 1), SignalEvent("a", -1), SignalEvent("a", 1)])
    assert events[0].signal == "a"
