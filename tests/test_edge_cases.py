"""Edge-case tests across modules (error paths, fallbacks, options)."""

import pytest

from repro.boolean.cube import Cube
from repro.core.covers import find_monotonous_cover
from repro.core.synthesis import synthesize
from repro.netlist.circuit_sg import CompositionError, build_circuit_state_graph
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist
from repro.sg.regions import all_excitation_regions, excitation_regions
from repro.stg.parser import parse_g


class TestGreedyMCFallback:
    def test_low_budget_triggers_greedy_path(self, fig1):
        er = next(
            e for e in excitation_regions(fig1, "d") if e.direction == -1
        )
        # exhaustive path finds the same full cube the greedy path keeps
        exhaustive = find_monotonous_cover(fig1, er)
        greedy = find_monotonous_cover(fig1, er, max_literal_budget=1)
        assert greedy == Cube({"a": 0, "b": 0, "c": 0})
        # the minimal-cube search may return a smaller cube; both are MCs
        from repro.core.covers import is_monotonous_cover

        assert is_monotonous_cover(fig1, er, exhaustive)
        assert is_monotonous_cover(fig1, er, greedy)

    def test_greedy_fails_cleanly_on_unfixable_region(self, fig1):
        er = next(
            e
            for e in excitation_regions(fig1, "d")
            if e.direction == 1 and e.index == 1
        )
        assert find_monotonous_cover(fig1, er, max_literal_budget=0) is None


class TestRegionEnumeration:
    def test_all_regions_includes_inputs_when_asked(self, fig1):
        only_outputs = all_excitation_regions(fig1, only_non_inputs=True)
        everything = all_excitation_regions(fig1, only_non_inputs=False)
        assert len(everything) > len(only_outputs)
        assert {er.signal for er in everything} == set(fig1.signals)


class TestCompositionErrors:
    def test_missing_output_driver(self, fig3):
        netlist = Netlist("incomplete", inputs=("a", "b"))
        netlist.add_gate(Gate("c", GateKind.BUF, (("a", 1),)))
        with pytest.raises(CompositionError):
            build_circuit_state_graph(netlist, fig3)

    def test_settle_disagrees_with_spec_initial(self, toggle_sg):
        # q driven as NOT r settles to 1 at the initial state, but the
        # spec starts with q = 0
        netlist = Netlist("wrong", inputs=("r",), interface_outputs=("q",))
        netlist.add_gate(Gate("q", GateKind.NOT, (("r", 1),)))
        with pytest.raises(CompositionError):
            build_circuit_state_graph(netlist, toggle_sg)


class TestParserTolerance:
    def test_capacity_and_slowenv_ignored(self):
        text = """
        .inputs r
        .outputs q
        .graph
        r+ q+
        q+ r-
        r- q-
        q- r+
        .capacity 1
        .marking { <q-,r+> }
        .slowenv
        .end
        """
        stg = parse_g(text)
        assert len(stg.net.transitions) == 4

    def test_name_alias_for_model(self):
        text = """
        .name aliased
        .inputs r
        .outputs q
        .graph
        r+ q+
        q+ r-
        r- q-
        q- r+
        .marking { <q-,r+> }
        .end
        """
        assert parse_g(text).name == "aliased"


class TestSynthesisOptions:
    def test_degenerate_disabled_fails_on_wire_only_design(self, toggle_sg):
        # the toggle's q has a private MC cube (r / r'), so disabling the
        # degenerate rule must still succeed -- just without the wire
        impl = synthesize(toggle_sg, allow_degenerate=False)
        q = impl.network("q")
        assert q.set_cover.cubes == (Cube({"r": 1}),)

    def test_implementation_repr_contains_signal(self, toggle_sg):
        impl = synthesize(toggle_sg)
        assert "q" in impl.equations()


class TestConstantOutputs:
    def test_never_switching_output_rejected_clearly(self):
        from repro.sg.builder import sg_from_arcs

        sg = sg_from_arcs(
            ("r", "q", "steady"),
            ("r",),
            (0, 0, 1),
            [
                ("s0", "r+", "s1"),
                ("s1", "q+", "s2"),
                ("s2", "r-", "s3"),
                ("s3", "q-", "s0"),
            ],
        )
        with pytest.raises(ValueError, match="steady"):
            synthesize(sg)
