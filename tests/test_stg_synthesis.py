"""Tests for theory-of-regions STG synthesis (SG -> Petri net)."""

import pytest

from repro.bench.figures import figure1_sg, figure3_sg, figure4_sg
from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.sg.conformance import trace_equivalent
from repro.stg.parser import parse_g
from repro.stg.reachability import stg_to_state_graph
from repro.stg.structural import is_live_and_safe
from repro.stg.synthesis import stg_from_state_graph
from repro.stg.writer import dumps_g


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks_roundtrip(self, name):
        original = stg_to_state_graph(load_benchmark(name))
        stg = stg_from_state_graph(original)
        back = stg_to_state_graph(stg)
        assert trace_equivalent(back, original), name

    @pytest.mark.parametrize("make", [figure1_sg, figure3_sg, figure4_sg])
    def test_figures_roundtrip(self, make):
        sg = make()
        stg = stg_from_state_graph(sg)
        back = stg_to_state_graph(stg)
        assert trace_equivalent(back, sg)

    def test_synthesised_net_is_live_and_safe(self):
        sg = stg_to_state_graph(load_benchmark("delement"))
        stg = stg_from_state_graph(sg)
        assert is_live_and_safe(stg)

    def test_g_file_roundtrip(self):
        """The synthesised net survives .g serialisation."""
        sg = stg_to_state_graph(load_benchmark("berkel2"))
        stg = stg_from_state_graph(sg)
        reparsed = parse_g(dumps_g(stg))
        back = stg_to_state_graph(reparsed)
        assert trace_equivalent(back, sg)


class TestWriteBackRepairedSpecs:
    def test_fig1_repaired_spec_exports(self, fig1):
        """The headline use: repair Figure 1 for MC, then write the
        repaired specification back as an STG -- it must stay
        trace-equivalent and still satisfy MC after re-elaboration."""
        result = insert_state_signals(fig1, max_models=400)
        stg = stg_from_state_graph(result.sg)
        back = stg_to_state_graph(stg)
        assert trace_equivalent(back, result.sg)
        assert analyze_mc(back).satisfied

    def test_occurrence_indices_used(self, fig1):
        stg = stg_from_state_graph(fig1)
        # d rises twice in Figure 1 -> d+ and d+/2 transitions
        assert "d+" in stg.net.transitions
        assert "d+/2" in stg.net.transitions

    def test_interface_preserved(self, fig4):
        stg = stg_from_state_graph(fig4)
        assert stg.inputs == fig4.inputs
        assert stg.non_inputs == fig4.non_inputs


class TestValidation:
    def test_validate_flag_can_be_disabled(self, toggle_sg):
        stg = stg_from_state_graph(toggle_sg, validate=False)
        assert len(stg.net.transitions) == 4

    def test_custom_name(self, toggle_sg):
        assert stg_from_state_graph(toggle_sg, name="mynet").name == "mynet"
