"""Definition 13: synthesised excitation functions are consistent.

"A function Sa (Ra) is a consistent up-(down-)excitation function if it
has value 1 in all states of 0*-set(a) (1*-set(a)) and value 0 in all
states from 1*-set(a) u 0-set(a) (0*-set(a) u 1-set(a))."  Every
excitation function this library synthesises -- MC, generalised-MC,
shared, degenerate -- must satisfy it.
"""

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.core.covers import is_consistent_excitation_function
from repro.core.synthesis import synthesize


def assert_implementation_consistent(sg, impl):
    for signal, network in impl.networks.items():
        assert is_consistent_excitation_function(
            sg, signal, network.set_cover, +1
        ), f"Sa inconsistent for {signal}"
        assert is_consistent_excitation_function(
            sg, signal, network.reset_cover, -1
        ), f"Ra inconsistent for {signal}"


def test_fig3_functions_consistent(fig3):
    assert_implementation_consistent(fig3, synthesize(fig3))
    assert_implementation_consistent(fig3, synthesize(fig3, share_gates=True))


def test_toggle_functions_consistent(toggle_sg):
    assert_implementation_consistent(toggle_sg, synthesize(toggle_sg))


@pytest.mark.parametrize("name", ["delement", "berkel2", "luciano", "mp-forward-pkt"])
def test_benchmark_functions_consistent(name, pipeline):
    result = pipeline(name)
    assert_implementation_consistent(result.insertion.sg, result.implementation)


def test_negative_example(fig3):
    """A function that stays 1 into the opposite excited set fails."""
    # Sd must be 0 on 1*-set(d); the constant-1 cover is not consistent
    assert not is_consistent_excitation_function(
        fig3, "d", Cover([Cube()]), +1
    )
    # ...and the correct one (x') is
    assert is_consistent_excitation_function(
        fig3, "d", Cover([Cube({"x": 0})]), +1
    )
