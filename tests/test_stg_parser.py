"""Unit tests for the .g parser, writer and the STG model."""

import pytest

from repro.stg.parser import implicit_place_name, parse_g
from repro.stg.stg import parse_transition_id
from repro.stg.writer import dumps_g

TOGGLE = """
.model toggle
.inputs r
.outputs q
.graph
r+ q+
q+ r-
r- q-
q- r+
.marking { <q-,r+> }
.end
"""


class TestTransitionIds:
    def test_plain(self):
        event, occ = parse_transition_id("a+")
        assert event.signal == "a" and event.direction == 1 and occ == 1

    def test_occurrence(self):
        event, occ = parse_transition_id("c-/2")
        assert event.signal == "c" and event.direction == -1 and occ == 2

    @pytest.mark.parametrize("text", ["a", "a*", "+a", "a+/x", "a+/"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_transition_id(text)


class TestParser:
    def test_toggle(self):
        stg = parse_g(TOGGLE)
        assert stg.name == "toggle"
        assert stg.inputs == frozenset({"r"})
        assert stg.outputs == frozenset({"q"})
        assert len(stg.net.transitions) == 4
        # four implicit places
        assert len(stg.net.places) == 4
        assert stg.initial_marking == frozenset({implicit_place_name("q-", "r+")})

    def test_explicit_places(self):
        text = """
        .inputs a
        .outputs b
        .graph
        p0 a+
        a+ b+
        b+ p1
        p1 a-
        a- b-
        b- p0
        .marking { p0 }
        .end
        """
        stg = parse_g(text)
        assert "p0" in stg.net.places
        assert "p1" in stg.net.places

    def test_marking_with_spaces_in_pairs(self):
        text = TOGGLE.replace("<q-,r+>", "<q-, r+>")
        stg = parse_g(text)
        assert stg.initial_marking == frozenset({implicit_place_name("q-", "r+")})

    def test_undeclared_signal_rejected(self):
        with pytest.raises(ValueError):
            parse_g(".inputs a\n.graph\na+ b+\nb+ a+\n.marking {<b+,a+>}\n.end")

    def test_unknown_marking_place_rejected(self):
        with pytest.raises(ValueError):
            parse_g(TOGGLE.replace("<q-,r+>", "<q+,q->"))

    def test_initial_values_directive(self):
        text = TOGGLE.replace(".graph", ".initial r=0 q=0\n.graph")
        stg = parse_g(text)
        assert stg.initial_values == {"r": 0, "q": 0}

    def test_dummy_transitions_rejected(self):
        with pytest.raises(ValueError):
            parse_g(".dummy eps\n.graph\n.end")

    def test_internal_signals(self):
        text = """
        .inputs r
        .outputs q
        .internal x
        .graph
        r+ x+
        x+ q+
        q+ r-
        r- x-
        x- q-
        q- r+
        .marking { <q-,r+> }
        .end
        """
        stg = parse_g(text)
        assert stg.internal == frozenset({"x"})
        assert stg.non_inputs == frozenset({"q", "x"})
        assert stg.signals == ("r", "q", "x")


class TestSTGModel:
    def test_input_output_overlap_rejected(self):
        with pytest.raises(ValueError):
            parse_g(
                ".inputs a\n.outputs a\n.graph\na+ a-\na- a+\n"
                ".marking {<a-,a+>}\n.end"
            )

    def test_transitions_of(self):
        stg = parse_g(TOGGLE)
        assert stg.transitions_of("q") == {"q+", "q-"}

    def test_event_of(self):
        stg = parse_g(TOGGLE)
        assert str(stg.event_of("r-")) == "r-"


class TestWriter:
    def test_roundtrip_toggle(self):
        stg = parse_g(TOGGLE)
        back = parse_g(dumps_g(stg))
        assert back.inputs == stg.inputs
        assert back.outputs == stg.outputs
        assert back.net.transitions == stg.net.transitions
        # reachable behaviour must be identical
        from repro.stg.reachability import stg_to_state_graph

        sg1 = stg_to_state_graph(stg)
        sg2 = stg_to_state_graph(back)
        assert sorted(sg1.code(s) for s in sg1.states) == sorted(
            sg2.code(s) for s in sg2.states
        )

    def test_roundtrip_benchmarks(self):
        from repro.bench.suite import BENCHMARKS, load_benchmark
        from repro.stg.reachability import stg_to_state_graph

        for name in BENCHMARKS:
            stg = load_benchmark(name)
            back = parse_g(dumps_g(stg))
            sg1 = stg_to_state_graph(stg)
            sg2 = stg_to_state_graph(back)
            assert len(sg1) == len(sg2), name
