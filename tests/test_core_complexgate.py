"""Tests for complex-gate synthesis (the paper's contrast point)."""

import pytest

from repro.core.complexgate import (
    CSCViolation,
    complex_gate_netlist,
    complex_gate_synthesize,
    next_state_function,
)
from repro.netlist.hazards import verify_speed_independence
from repro.sg.csc import has_csc


class TestNextStateFunction:
    def test_on_off_partition(self, toggle_sg):
        on, off = next_state_function(toggle_sg, "q")
        on_codes = {tuple(c[s] for s in toggle_sg.signals) for c in on}
        off_codes = {tuple(c[s] for s in toggle_sg.signals) for c in off}
        # next(q)=1 exactly when r=1 (set) or q=1 holding with r=1...
        # toggle: q follows r: on = {(1,0),(1,1)}, off = {(0,0),(0,1)}
        assert on_codes == {(1, 0), (1, 1)}
        assert off_codes == {(0, 0), (0, 1)}

    def test_csc_violation_detected(self):
        from repro.bench.suite import load_benchmark
        from repro.stg.reachability import stg_to_state_graph

        sg = stg_to_state_graph(load_benchmark("delement"))
        assert not has_csc(sg)
        with pytest.raises(CSCViolation) as exc:
            next_state_function(sg, "b")
        assert exc.value.signal == "b"


class TestSynthesis:
    def test_fig1_complex_gates_without_insertion(self, fig1):
        """The paper's motivation in reverse: Figure 1 satisfies CSC, so
        complex gates implement it directly -- although the basic-gate
        architecture needs a state signal (MC fails)."""
        impl = complex_gate_synthesize(fig1)
        assert set(impl.functions) == {"c", "d"}
        netlist = complex_gate_netlist(impl)
        report = verify_speed_independence(netlist, fig1)
        assert report.hazard_free

    def test_atomic_gates_have_feedback(self, fig1):
        netlist = complex_gate_netlist(complex_gate_synthesize(fig1))
        gate = netlist.gates["c"]
        assert "c" in gate.fanin_signals  # self-feedback: state-holding
        assert "c" in netlist.state_holding_signals()

    def test_functions_respect_the_spec(self, fig1):
        impl = complex_gate_synthesize(fig1)
        for signal, cover in impl.functions.items():
            for state in fig1.states:
                value = fig1.value(state, signal)
                excited = fig1.is_excited(state, signal)
                expected = (1 - value) if excited else value
                assert cover.covers(fig1.code_dict(state)) == bool(expected)

    def test_equations_rendering(self, fig1):
        text = complex_gate_synthesize(fig1).equations()
        assert text.startswith("c = [")
        assert "d = [" in text

    def test_fig3_complex_gates(self, fig3):
        impl = complex_gate_synthesize(fig3)
        netlist = complex_gate_netlist(impl)
        report = verify_speed_independence(netlist, fig3)
        assert report.hazard_free

    def test_literal_count_positive(self, fig1):
        assert complex_gate_synthesize(fig1).literal_count() > 0
