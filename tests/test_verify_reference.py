"""The retained reference path must match the bitengine claim-for-claim."""

import pytest

from repro.corpus import alternator, concurrent_fork, token_ring
from repro.bench.suite import load_benchmark
from repro.core.mc import analyze_mc
from repro.stg.reachability import stg_to_state_graph
from repro.pipeline.backends.reference import analyze_mc_reference
from repro.verify.differential import diff_reports

pytestmark = pytest.mark.smoke


def assert_paths_agree(sg):
    fast = analyze_mc(sg)
    reference = analyze_mc_reference(sg)
    mismatches = diff_reports(fast, reference, label=sg.name)
    assert not mismatches, "\n".join(mismatches)
    return fast, reference


class TestPaperFigures:
    def test_figure3_satisfied_and_identical(self, fig3):
        fast, reference = assert_paths_agree(fig3)
        assert fast.satisfied and reference.satisfied

    def test_figure4_violation_diagnostics_match(self, fig4):
        """The stuck-state diagnostics drive the insertion engine, so the
        reference must reproduce them exactly, not just the verdict."""
        fast, reference = assert_paths_agree(fig4)
        assert not fast.satisfied
        fast_failed = [v for v in fast.verdicts if v.mc_cube is None]
        ref_failed = [v for v in reference.verdicts if v.mc_cube is None]
        assert len(fast_failed) == len(ref_failed) >= 1


class TestBenchmarks:
    @pytest.mark.parametrize("name", ["delement", "nowick", "luciano"])
    def test_benchmark_graphs_agree(self, name):
        stg = load_benchmark(name)
        assert_paths_agree(stg_to_state_graph(stg))


class TestParametricFamilies:
    def test_token_ring(self):
        assert_paths_agree(stg_to_state_graph(token_ring(4)))

    def test_concurrent_fork(self):
        assert_paths_agree(stg_to_state_graph(concurrent_fork(3)))

    def test_alternator(self):
        assert_paths_agree(stg_to_state_graph(alternator(3)))


class TestSelectedCubes:
    def test_same_cube_chosen_per_region(self, fig3):
        """Claim-for-claim: the *same* cube, not just some valid cube."""
        fast = analyze_mc(fig3)
        reference = analyze_mc_reference(fig3)
        fast_cubes = {
            (v.er.signal, v.er.direction, v.er.index): repr(v.mc_cube)
            for v in fast.verdicts
        }
        ref_cubes = {
            (v.er.signal, v.er.direction, v.er.index): repr(v.mc_cube)
            for v in reference.verdicts
        }
        assert fast_cubes == ref_cubes


class TestDeprecatedShim:
    """The repro.verify.reference alias forwards faithfully and warns once."""

    def test_warns_exactly_once_per_process(self):
        # a subprocess gives a clean import state: this process may have
        # imported the shim already (warnings fire at import time only)
        import subprocess
        import sys

        script = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.verify.reference\n"
            "    import importlib\n"
            "    importlib.import_module('repro.verify.reference')\n"
            "deprecations = [w for w in caught\n"
            "                if issubclass(w.category, DeprecationWarning)\n"
            "                and 'repro.verify.reference' in str(w.message)]\n"
            "print(len(deprecations))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "1"

    def test_all_and_docstring_forwarded(self):
        import repro.pipeline.backends.reference as real
        import repro.verify.reference as shim

        assert shim.__all__ == real.__all__
        for name in real.__all__:
            assert getattr(shim, name) is getattr(real, name)
        assert "deprecated" in shim.__doc__.lower()
        # the real module's docstring rides along after the notice
        assert real.__doc__.strip().splitlines()[0] in shim.__doc__
