"""Tests for deadlock/liveness/statistics analysis."""


from repro.sg.analysis import (
    deadlock_states,
    is_live,
    statistics,
    strongly_connected_components,
)
from repro.sg.builder import sg_from_arcs
from repro.sg.graph import StateGraph
from repro.sg.events import SignalEvent


class TestDeadlocks:
    def test_cyclic_graph_has_none(self, fig1):
        assert deadlock_states(fig1) == []

    def test_terminal_state_detected(self):
        sg = StateGraph(
            ("a",),
            ("a",),
            {"s0": (0,), "s1": (1,)},
            [("s0", SignalEvent.rise("a"), "s1")],
            "s0",
        )
        assert deadlock_states(sg) == ["s1"]


class TestSCC:
    def test_cycle_is_one_component(self, toggle_sg):
        components = strongly_connected_components(toggle_sg)
        assert len(components) == 1
        assert components[0] == toggle_sg.states

    def test_figures_are_strongly_connected(self, fig1, fig3, fig4):
        for sg in (fig1, fig3, fig4):
            assert len(strongly_connected_components(sg)) == 1

    def test_chain_has_per_state_components(self):
        sg = StateGraph(
            ("a",),
            ("a",),
            {"s0": (0,), "s1": (1,)},
            [("s0", SignalEvent.rise("a"), "s1")],
            "s0",
        )
        assert len(strongly_connected_components(sg)) == 2


class TestLiveness:
    def test_figures_live(self, fig1, fig3, fig4, toggle_sg, choice_sg):
        for sg in (fig1, fig3, fig4, toggle_sg, choice_sg):
            assert is_live(sg), sg.name

    def test_transient_prefix_not_live(self):
        # a+ leads into a b+/b- loop; a never fires again
        sg = sg_from_arcs(
            ("a", "b"),
            ("a",),
            (0, 0),
            [
                ("s0", "a+", "s1"),
                ("s1", "b+", "s2"),
                ("s2", "b-", "s1"),
            ],
        )
        assert not is_live(sg)


class TestStatistics:
    def test_fig1_summary(self, fig1):
        stats = statistics(fig1)
        assert stats.states == 14
        assert stats.arcs == 18
        assert stats.signals == 4 and stats.inputs == 2
        assert stats.max_concurrency == 2
        assert stats.deadlocks == 0
        assert stats.live
        assert "14 states" in stats.describe()

    def test_region_counts(self, fig1):
        stats = statistics(fig1)
        # a: 2 regions (a+ x1? a+: 0->1 in two places?) -- just sanity:
        assert stats.regions >= 8
        assert stats.max_region_size >= 3  # ER(+d1)
