"""Unit tests for trace refinement and equivalence."""

import pytest

from repro.core.insertion import insert_state_signals
from repro.netlist.circuit_sg import build_circuit_state_graph
from repro.netlist.netlist import netlist_from_implementation
from repro.core.synthesis import synthesize
from repro.sg.builder import sg_from_arcs
from repro.sg.conformance import refines, trace_equivalent


def seq_sg(name, events, signals, inputs, initial_code):
    arcs = [
        (f"s{i}", e, f"s{(i + 1) % len(events)}") for i, e in enumerate(events)
    ]
    return sg_from_arcs(signals, inputs, initial_code, arcs, initial="s0", name=name)


class TestRefines:
    def test_graph_refines_itself(self, fig1):
        assert refines(fig1, fig1)

    def test_trace_equivalence_reflexive(self, toggle_sg):
        assert trace_equivalent(toggle_sg, toggle_sg)

    def test_insertion_result_refines_original(self, fig1):
        result = insert_state_signals(fig1, max_models=400)
        verdict = refines(result.sg, fig1, hidden=result.added_signals)
        assert verdict.holds

    def test_wrong_order_not_refining(self):
        spec = seq_sg("spec", ["r+", "q+", "r-", "q-"], ("r", "q"), ("r",), (0, 0))
        impl = seq_sg("impl", ["q+", "r+", "q-", "r-"], ("r", "q"), ("r",), (0, 0))
        verdict = refines(impl, spec)
        assert not verdict.holds
        assert str(verdict.counterexample[-1]) == "q+"

    def test_counterexample_is_a_prefix(self):
        spec = seq_sg("spec", ["r+", "q+", "r-", "q-"], ("r", "q"), ("r",), (0, 0))
        impl = seq_sg("impl", ["r+", "q+", "q-", "r-"], ("r", "q"), ("r",), (0, 0))
        verdict = refines(impl, spec)
        assert not verdict.holds
        assert [str(e) for e in verdict.counterexample] == ["r+", "q+", "q-"]

    def test_hidden_signal_clash_rejected(self, fig1):
        with pytest.raises(ValueError):
            refines(fig1, fig1, hidden=["a"])

    def test_subset_behaviour_refines(self, choice_sg):
        # an implementation that only ever serves channel a is a
        # refinement of the full choice (traces are a subset)
        only_a = seq_sg(
            "only-a", ["a+", "q+", "a-", "q-"], ("a", "b", "q"), ("a", "b"), (0, 0, 0)
        )
        assert refines(only_a, choice_sg)
        assert not refines(choice_sg, only_a).holds

    def test_circuit_composition_refines_spec(self, fig3):
        """The closed loop, with internal gate signals hidden, refines
        the specification -- the composition engine's core guarantee."""
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        composition = build_circuit_state_graph(netlist, fig3)
        internal = set(composition.sg.signals) - set(fig3.signals)
        assert refines(composition.sg, fig3, hidden=internal)


class TestTraceEquivalence:
    def test_different_signal_sets(self, fig1, fig3):
        assert not trace_equivalent(fig1, fig3)

    def test_relabelled_graph_equivalent(self, fig1):
        renamed = fig1.relabelled({s: f"n_{s}" for s in fig1.states})
        assert trace_equivalent(fig1, renamed)
