"""End-to-end tests of the differential oracle and its campaign driver."""

from repro.bench.suite import load_benchmark
from repro.stg.reachability import stg_to_state_graph
from repro.verify.budget import Budget
from repro.verify.differential import (
    CampaignReport,
    DiffRecord,
    diff_state_graph,
    diff_stg,
    differential_campaign,
)


class TestSingleGraph:
    def test_satisfied_graph_agrees(self, fig3):
        record = diff_state_graph(fig3)
        assert record.agree
        assert record.satisfied is True
        assert record.inserted_signals is None

    def test_violated_graph_repairs_and_cross_checks(self, fig4):
        """Figure 4 violates MC; the oracle must repair it and have the
        reference path independently confirm the repaired graph."""
        record = diff_state_graph(fig4)
        assert record.agree, record.describe()
        assert record.satisfied is False
        assert record.inserted_signals == 1

    def test_repair_can_be_disabled(self, fig4):
        record = diff_state_graph(fig4, repair=False)
        assert record.agree
        assert record.inserted_signals is None
        assert record.repair_note is None

    def test_oversized_graph_skips_repair_not_the_diff(self, fig4):
        record = diff_state_graph(fig4, repair_max_states=1)
        assert record.agree  # analyses still diffed
        assert record.inserted_signals is None
        assert "repair_max_states" in record.repair_note

    def test_describe_mentions_insertion(self, fig4):
        text = diff_state_graph(fig4).describe()
        assert "1 signal(s) inserted" in text


class TestBudgets:
    def test_state_budget_skips_design(self, fig3):
        record = diff_state_graph(fig3, budget=Budget(max_states=2))
        assert record.skipped is not None
        assert "state budget" in record.skipped
        assert not record.agree

    def test_elaboration_blowup_becomes_skip(self):
        stg = load_benchmark("delement")
        budget = Budget(max_states=3)
        record = diff_stg(stg, budget=budget)
        assert record.skipped is not None
        assert record.skipped.startswith("elaboration")


class TestCampaign:
    def test_small_campaign_has_zero_divergence(self):
        report = differential_campaign(
            count=8, seed=0, max_seconds_each=20.0, repair_seconds=1.0
        )
        assert len(report.records) == 8
        assert report.divergent == [], report.describe()
        assert report.ok
        assert report.checked >= 6  # a couple may blow the budget

    def test_campaign_over_explicit_specs(self):
        specs = [("delement", load_benchmark("delement"))]
        report = differential_campaign(specs=specs, repair=False)
        assert report.ok
        assert report.records[0].name == "delement"

    def test_all_skipped_campaign_is_not_ok(self):
        """Zero conclusive checks must not read as a green result."""
        report = CampaignReport(
            records=[DiffRecord(name="x", states=0, skipped="budget")]
        )
        assert not report.ok
        assert report.checked == 0

    def test_progress_callback_sees_every_record(self):
        seen = []
        specs = [("delement", load_benchmark("delement"))]
        differential_campaign(specs=specs, repair=False, progress=seen.append)
        assert [r.name for r in seen] == ["delement"]

    def test_describe_summarises_counts(self):
        specs = [("delement", load_benchmark("delement"))]
        text = differential_campaign(specs=specs, repair=False).describe()
        assert "1 design(s)" in text
        assert "0 DIVERGENT" in text


class TestDivergenceDetection:
    def test_a_planted_divergence_is_reported(self, fig3):
        """Corrupt the reference input: the oracle must notice, proving
        it can actually fail (no vacuous green)."""
        other = stg_to_state_graph(load_benchmark("delement"))
        record = diff_state_graph(fig3, reference_sg=other)
        assert record.mismatches
        assert not record.agree
