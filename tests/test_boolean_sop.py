"""Unit tests for SOP rendering."""

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.sop import (
    format_cover,
    format_cube,
    format_equation,
    format_equations,
    format_literal,
)


def test_literal_polarity():
    assert format_literal("a", 1) == "a"
    assert format_literal("a", 0) == "a'"


def test_cube_compact_single_char_names():
    assert format_cube(Cube({"a": 1, "b": 0, "c": 1})) == "ab'c"


def test_cube_spaced_for_long_names():
    text = format_cube(Cube({"req": 1, "ack": 0}))
    assert text == "ack' req"


def test_cube_compact_flag_off():
    assert format_cube(Cube({"a": 1, "b": 0}), compact=False) == "a b'"


def test_universal_cube_renders_one():
    assert format_cube(Cube()) == "1"


def test_empty_cover_renders_zero():
    assert format_cover(Cover()) == "0"


def test_cover_sum():
    cover = Cover([Cube({"a": 1, "b": 0}), Cube({"c": 1})])
    assert format_cover(cover) == "ab' + c"


def test_equation():
    assert format_equation("Sd", Cover([Cube({"x": 1})])) == "Sd = x"


def test_equations_multi_line():
    text = format_equations(
        [("Sa", Cover([Cube({"b": 1})])), ("Ra", Cover([Cube({"b": 0})]))]
    )
    assert text.splitlines() == ["Sa = b", "Ra = b'"]
