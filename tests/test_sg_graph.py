"""Unit tests for the StateGraph automaton."""

import pytest

from repro.sg.events import SignalEvent
from repro.sg.graph import InconsistentStateGraph, StateGraph


def tiny():
    return StateGraph(
        signals=("r", "q"),
        inputs=("r",),
        codes={"s0": (0, 0), "s1": (1, 0), "s2": (1, 1), "s3": (0, 1)},
        arcs=[
            ("s0", SignalEvent.rise("r"), "s1"),
            ("s1", SignalEvent.rise("q"), "s2"),
            ("s2", SignalEvent.fall("r"), "s3"),
            ("s3", SignalEvent.fall("q"), "s0"),
        ],
        initial="s0",
        name="tiny",
    )


class TestConstruction:
    def test_duplicate_signals_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(("a", "a"), (), {"s": (0, 0)}, [], "s")

    def test_unknown_inputs_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(("a",), ("b",), {"s": (0,)}, [], "s")

    def test_bad_code_length_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(("a", "b"), (), {"s": (0,)}, [], "s")

    def test_unknown_initial_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(("a",), (), {"s": (0,)}, [], "t")

    def test_arc_must_flip_named_bit(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(
                ("a",),
                (),
                {"s": (0,), "t": (0,)},
                [("s", SignalEvent.rise("a"), "t")],
                "s",
            )

    def test_arc_must_not_change_other_bits(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(
                ("a", "b"),
                (),
                {"s": (0, 0), "t": (1, 1)},
                [("s", SignalEvent.rise("a"), "t")],
                "s",
            )

    def test_arc_event_on_unknown_signal(self):
        with pytest.raises(InconsistentStateGraph):
            StateGraph(
                ("a",),
                (),
                {"s": (0,), "t": (1,)},
                [("s", SignalEvent.rise("z"), "t")],
                "s",
            )

    def test_check_flags_unreachable_states(self):
        sg = StateGraph(
            ("a",),
            (),
            {"s": (0,), "t": (1,)},
            [],
            "s",
        )
        with pytest.raises(InconsistentStateGraph):
            sg.check()


class TestAccessors:
    def test_basic_queries(self):
        sg = tiny()
        assert sg.non_inputs == frozenset({"q"})
        assert sg.code("s1") == (1, 0)
        assert sg.code_dict("s2") == {"r": 1, "q": 1}
        assert sg.value("s3", "q") == 1
        assert sg.signal_position("q") == 1
        assert len(sg) == 4

    def test_excitation_queries(self):
        sg = tiny()
        assert sg.excited_signals("s0") == {"r"}
        assert sg.is_excited("s1", "q")
        assert not sg.is_excited("s1", "r")
        assert sg.enabled_events("s1") == [SignalEvent.rise("q")]

    def test_fire(self):
        sg = tiny()
        assert sg.fire("s0", SignalEvent.rise("r")) == ["s1"]
        assert sg.fire("s0", SignalEvent.rise("q")) == []

    def test_successors_predecessors(self):
        sg = tiny()
        assert sg.successors("s0") == ["s1"]
        assert sg.predecessors("s0") == ["s3"]

    def test_arcs_roundtrip(self):
        sg = tiny()
        assert len(sg.arcs()) == 4


class TestTraversal:
    def test_reachable_from(self):
        sg = tiny()
        assert sg.reachable_from("s0") == {"s0", "s1", "s2", "s3"}

    def test_reaches(self):
        sg = tiny()
        assert sg.reaches("s0", {"s2"})
        assert sg.reaches("s2", {"s2"})


class TestDerivedViews:
    def test_restricted_to(self):
        sg = tiny()
        sub = sg.restricted_to({"s0", "s1"}, initial="s0")
        assert len(sub) == 2
        assert len(sub.arcs()) == 1

    def test_restricted_requires_initial(self):
        with pytest.raises(ValueError):
            tiny().restricted_to({"s1"})

    def test_relabelled(self):
        sg = tiny().relabelled({"s0": "start"})
        assert sg.initial == "start"
        assert sg.code("start") == (0, 0)

    def test_relabelled_must_be_injective(self):
        with pytest.raises(ValueError):
            tiny().relabelled({"s0": "x", "s1": "x"})
