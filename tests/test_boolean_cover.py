"""Unit tests for covers (sums of cubes)."""

import pytest

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


class TestConstruction:
    def test_deduplicates(self):
        cover = Cover([Cube({"a": 1}), Cube({"a": 1})])
        assert len(cover) == 1

    def test_rejects_non_cubes(self):
        with pytest.raises(TypeError):
            Cover(["ab"])

    def test_empty_cover_is_constant_zero(self):
        cover = Cover()
        assert cover.is_empty()
        assert not cover
        assert not cover.covers({"a": 1})


class TestSemantics:
    def test_covers_is_disjunction(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 1})])
        assert cover.covers({"a": 1, "b": 0})
        assert cover.covers({"a": 0, "b": 1})
        assert not cover.covers({"a": 0, "b": 0})

    def test_covering_cubes(self):
        c1, c2 = Cube({"a": 1}), Cube({"b": 1})
        cover = Cover([c1, c2])
        assert cover.covering_cubes({"a": 1, "b": 1}) == [c1, c2]
        assert cover.covering_cubes({"a": 1, "b": 0}) == [c1]

    def test_evaluator_agrees_with_covers(self):
        cover = Cover([Cube({"a": 1, "b": 0}), Cube({"c": 1})])
        order = ("a", "b", "c")
        evaluate = cover.evaluator(order)
        for code in [(1, 0, 0), (0, 0, 1), (0, 1, 0), (1, 1, 1)]:
            assert evaluate(code) == cover.covers(dict(zip(order, code)))

    def test_signals(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 0, "c": 1})])
        assert cover.signals == frozenset({"a", "b", "c"})


class TestAlgebra:
    def test_union_and_with_cube(self):
        cover = Cover([Cube({"a": 1})]).union(Cover([Cube({"b": 1})]))
        assert len(cover) == 2
        assert len(cover.with_cube(Cube({"c": 1}))) == 3

    def test_contains_cube(self):
        cover = Cover([Cube({"a": 1})])
        assert cover.contains_cube(Cube({"a": 1, "b": 0}))
        assert not cover.contains_cube(Cube({"b": 0}))

    def test_irredundant_drops_contained(self):
        cover = Cover([Cube({"a": 1}), Cube({"a": 1, "b": 0})])
        reduced = cover.irredundant()
        assert reduced == Cover([Cube({"a": 1})])

    def test_irredundant_respects_keep(self):
        keep = Cube({"a": 1, "b": 0})
        cover = Cover([Cube({"a": 1}), keep])
        assert keep in cover.irredundant(keep=[keep]).cubes

    def test_literal_count(self):
        cover = Cover([Cube({"a": 1}), Cube({"b": 0, "c": 1})])
        assert cover.literal_count() == 3

    def test_equality_ignores_order(self):
        a, b = Cube({"a": 1}), Cube({"b": 1})
        assert Cover([a, b]) == Cover([b, a])
        assert hash(Cover([a, b])) == hash(Cover([b, a]))
