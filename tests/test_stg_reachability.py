"""Unit tests for token-flow reachability and state-graph elaboration."""

import pytest

from repro.sg.csc import has_usc
from repro.sg.properties import is_output_semi_modular
from repro.stg.parser import parse_g
from repro.stg.reachability import ReachabilityError, explore, stg_to_state_graph

TOGGLE = """
.inputs r
.outputs q
.graph
r+ q+
q+ r-
r- q-
q- r+
.marking { <q-,r+> }
.end
"""

CONCURRENT = """
.inputs r
.outputs u v
.graph
r+ u+ v+
u+ r-
v+ r-
r- u- v-
u- r+
v- r+
.marking { <u-,r+> <v-,r+> }
.end
"""


class TestExplore:
    def test_toggle_has_four_markings(self):
        order, parities, arcs = explore(parse_g(TOGGLE))
        assert len(order) == 4
        assert len(arcs) == 4

    def test_concurrency_diamond(self):
        sg = stg_to_state_graph(parse_g(CONCURRENT))
        # r+ (u+ || v+) r- (u- || v-): 2 + 4*... states: let's count:
        # idle, after r+, {u,v} diamond (2 states), both up, after r-,
        # down diamond (2), = 8
        assert len(sg) == 8
        assert is_output_semi_modular(sg)

    def test_max_states_guard(self):
        with pytest.raises(ReachabilityError):
            explore(parse_g(CONCURRENT), max_states=3)

    def test_unsafe_net_rejected(self):
        text = """
        .inputs a
        .outputs b
        .graph
        p0 a+
        a+ p1 p0
        p1 b+
        b+ p2
        p2 a-
        a- b-
        b- p0
        .marking { p0 }
        .end
        """
        # firing a+ returns a token to p0 while it may still be marked
        with pytest.raises(ReachabilityError):
            stg_to_state_graph(parse_g(text))


class TestInitialValues:
    def test_inferred_from_first_edges(self):
        sg = stg_to_state_graph(parse_g(TOGGLE))
        assert sg.code(sg.initial) == (0, 0)

    def test_declared_value_conflict_rejected(self):
        text = TOGGLE.replace(".graph", ".initial r=1\n.graph")
        with pytest.raises(ReachabilityError):
            stg_to_state_graph(parse_g(text))

    def test_declared_value_for_constant_signal(self):
        text = """
        .inputs r en
        .outputs q
        .initial en=1
        .graph
        r+ q+
        q+ r-
        r- q-
        q- r+
        .marking { <q-,r+> }
        .end
        """
        sg = stg_to_state_graph(parse_g(text))
        assert sg.value(sg.initial, "en") == 1

    def test_inconsistent_cycle_rejected(self):
        # q toggles once around a loop of odd parity: q+ then back to start
        text = """
        .inputs r
        .outputs q
        .graph
        r+ q+
        q+ r+
        .marking { <q+,r+> }
        .end
        """
        with pytest.raises(ReachabilityError):
            stg_to_state_graph(parse_g(text))


class TestStateGraphShape:
    def test_states_named_by_discovery(self):
        sg = stg_to_state_graph(parse_g(TOGGLE))
        assert sg.initial == "m0"
        assert set(sg.states) == {"m0", "m1", "m2", "m3"}

    def test_delement_alias(self):
        text = """
        .inputs a d
        .outputs b c
        .graph
        a+ c+
        c+ d+
        d+ c-
        c- d-
        d- b+
        b+ a-
        a- b-
        b- a+
        .marking { <b-,a+> }
        .end
        """
        sg = stg_to_state_graph(parse_g(text))
        assert len(sg) == 8
        assert not has_usc(sg)
