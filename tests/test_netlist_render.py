"""Unit tests for Verilog/DOT rendering."""

from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.synthesis import synthesize
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.render import netlist_to_dot, netlist_to_verilog, sg_to_dot


class TestVerilog:
    def test_c_style_emits_c_element_module(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        text = netlist_to_verilog(netlist)
        assert "module c_element" in text
        assert "module fig3_cimpl(" in text
        assert "endmodule" in text
        # the d = x' wire becomes an inverter assign
        assert "assign d = ~x;" in text

    def test_rs_style_emits_rs_latch(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "RS")
        text = netlist_to_verilog(netlist)
        assert "module rs_latch" in text
        assert "rs_latch u" in text

    def test_inverted_pins(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        text = netlist_to_verilog(netlist)
        assert "~" in text  # bubbles render as negations

    def test_complex_gate_rendering(self, fig1):
        netlist = complex_gate_netlist(complex_gate_synthesize(fig1))
        text = netlist_to_verilog(netlist)
        assert "// complex gate:" in text
        assert "assign c =" in text

    def test_identifier_sanitisation(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        text = netlist_to_verilog(netlist)
        # no stray characters from internal gate names
        for ch in ("'", "+", "-"):
            assert ch not in text.replace("1'b1", "").replace("1'b0", "")


class TestDot:
    def test_netlist_dot(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        text = netlist_to_dot(netlist)
        assert text.startswith("digraph")
        assert "doublecircle" in text      # latches
        assert "arrowhead=odot" in text    # inversion bubbles

    def test_sg_dot_uses_asterisk_labels(self, fig1):
        text = sg_to_dot(fig1)
        assert 'label="0*0*00"' in text
        assert "d+" in text
        assert text.count("->") == len(fig1.arcs())

    def test_sg_dot_marks_initial(self, toggle_sg):
        text = sg_to_dot(toggle_sg)
        assert "doublecircle" in text
