"""Tests for netlist JSON persistence and the CLI check command."""

import os

import pytest

from repro.cli import main
from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.io import load_netlist, netlist_from_json, netlist_to_json, save_netlist
from repro.netlist.netlist import netlist_from_implementation

DATA = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "bench", "data"
)


class TestRoundTrip:
    @pytest.mark.parametrize("style", ["C", "RS", "RS-NOR", "C-INV"])
    def test_all_styles_roundtrip(self, fig3, style):
        original = netlist_from_implementation(synthesize(fig3), style)
        back = netlist_from_json(netlist_to_json(original))
        assert back.inputs == original.inputs
        assert set(back.gates) == set(original.gates)
        for name in original.gates:
            assert back.gates[name].kind == original.gates[name].kind
            assert back.gates[name].inputs == original.gates[name].inputs
        assert back.initial_hints == original.initial_hints
        assert back.declared_state_holding == original.declared_state_holding

    def test_complex_gates_roundtrip(self, fig1):
        original = complex_gate_netlist(complex_gate_synthesize(fig1))
        back = netlist_from_json(netlist_to_json(original))
        for name, gate in original.gates.items():
            assert back.gates[name].function == gate.function

    def test_verification_equivalent_after_roundtrip(self, fig3):
        original = netlist_from_implementation(synthesize(fig3), "C")
        back = netlist_from_json(netlist_to_json(original))
        first = verify_speed_independence(original, fig3)
        second = verify_speed_independence(back, fig3)
        assert first.hazard_free == second.hazard_free
        assert len(first.circuit_sg) == len(second.circuit_sg)

    def test_file_roundtrip(self, tmp_path, fig3):
        path = tmp_path / "net.json"
        original = netlist_from_implementation(synthesize(fig3), "C")
        save_netlist(original, str(path))
        assert set(load_netlist(str(path)).gates) == set(original.gates)


class TestCliCheck:
    def test_save_and_check_good_netlist(self, tmp_path, capsys):
        spec = os.path.join(DATA, "mp-forward-pkt.g")
        saved = tmp_path / "net.json"
        assert main(["synth", spec, "--no-verify", "--save-netlist", str(saved)]) == 0
        assert main(["check", spec, str(saved)]) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE" in out

    def test_check_catches_bad_netlist(self, tmp_path, capsys, fig4):
        """The Figure-4 baseline, saved and re-checked, must fail."""
        from repro.core.baseline import baseline_synthesize

        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        saved = tmp_path / "bad.json"
        save_netlist(netlist, str(saved))
        # spec as .g: write the fig4 STG equivalent -- easier: go through
        # the library API instead of the CLI for the spec side
        report = verify_speed_independence(load_netlist(str(saved)), fig4)
        assert not report.hazard_free
