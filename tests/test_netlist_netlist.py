"""Unit tests for netlist structure and construction from implementations."""

import pytest

from repro.core.synthesis import synthesize
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist, NetlistError, netlist_from_implementation


class TestNetlistStructure:
    def test_double_drive_rejected(self):
        netlist = Netlist("n", ("a",))
        netlist.add_gate(Gate("y", GateKind.BUF, (("a", 1),)))
        with pytest.raises(NetlistError):
            netlist.add_gate(Gate("y", GateKind.NOT, (("a", 1),)))

    def test_driving_an_input_rejected(self):
        netlist = Netlist("n", ("a",))
        with pytest.raises(NetlistError):
            netlist.add_gate(Gate("a", GateKind.BUF, (("a", 1),)))

    def test_fanin_closure(self):
        netlist = Netlist("n", ("a",))
        netlist.add_gate(Gate("y", GateKind.BUF, (("z", 1),)))
        with pytest.raises(NetlistError):
            netlist.fanin_closure_check()

    def test_settle_topological(self):
        netlist = Netlist("n", ("a",))
        netlist.add_gate(Gate("u", GateKind.NOT, (("a", 1),)))
        netlist.add_gate(Gate("v", GateKind.NOT, (("u", 1),)))
        values = netlist.settle({"a": 1})
        assert values["u"] == 0 and values["v"] == 1

    def test_state_holding_includes_latches(self):
        netlist = Netlist("n", ("s", "r"))
        netlist.add_gate(Gate("q", GateKind.C, (("s", 1), ("r", 0))))
        assert netlist.state_holding_signals() == {"q"}

    def test_state_holding_includes_feedback_loops(self):
        netlist = Netlist("n", ("s", "r"))
        netlist.add_gate(Gate("q", GateKind.NOR, (("r", 1), ("qb", 1))))
        netlist.add_gate(Gate("qb", GateKind.NOR, (("s", 1), ("q", 1))))
        netlist.add_gate(Gate("y", GateKind.BUF, (("q", 1),)))
        holding = netlist.state_holding_signals()
        assert holding == {"q", "qb"}  # y reads the loop but is not in it

    def test_gate_count(self):
        netlist = Netlist("n", ("a", "b"))
        netlist.add_gate(Gate("u", GateKind.AND, (("a", 1), ("b", 1))))
        netlist.add_gate(Gate("q", GateKind.C, (("u", 1), ("b", 0))))
        assert netlist.gate_count() == {"and": 1, "c": 1}


class TestFromImplementation:
    def test_fig3_c_style_structure(self, fig3):
        impl = synthesize(fig3)
        netlist = netlist_from_implementation(impl, "C")
        counts = netlist.gate_count()
        assert counts["c"] == 2          # latches for c and x (d is a wire)
        assert counts["not"] == 1        # d = x'
        assert counts["and"] >= 3
        assert set(netlist.interface_outputs) == {"c", "d", "x"}

    def test_fig3_rs_style_uses_rs_latches(self, fig3):
        impl = synthesize(fig3)
        netlist = netlist_from_implementation(impl, "RS")
        assert netlist.gate_count()["rs"] == 2

    def test_fig3_rs_nor_style_has_rails(self, fig3):
        impl = synthesize(fig3)
        netlist = netlist_from_implementation(impl, "RS-NOR")
        assert "c_bar" in netlist.gates
        assert netlist.initial_hints["c_bar"] == ("c", 0)
        assert "c" in netlist.declared_state_holding

    def test_unknown_style_rejected(self, fig3):
        with pytest.raises(NetlistError):
            netlist_from_implementation(synthesize(fig3), "D")

    def test_single_literal_cube_needs_no_and_gate(self, toggle_sg):
        impl = synthesize(toggle_sg)
        netlist = netlist_from_implementation(impl, "C")
        # q = wire from r: a single BUF, no AND/OR/C at all
        assert netlist.gate_count() == {"buf": 1}

    def test_shared_and_gate_instantiated_once(self, fig3):
        impl = synthesize(fig3, share_gates=True)
        netlist = netlist_from_implementation(impl, "C")
        plain = netlist_from_implementation(synthesize(fig3), "C")
        assert sum(netlist.gate_count().values()) <= sum(plain.gate_count().values())

    def test_describe_lists_gates(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        text = netlist.describe()
        assert "c = C(" in text
