"""Unit tests for the graceful-degradation budget guard."""

import pytest

from repro.verify.budget import Budget, BudgetExceeded

pytestmark = pytest.mark.smoke


class TestNoOpBudget:
    def test_unbounded_budget_never_raises(self):
        budget = Budget()
        budget.charge_states(10**9, "elaboration")
        budget.check_time("analysis")
        assert not budget.exhausted
        assert budget.seconds_left is None
        assert budget.remaining_states(42) == 42


class TestStateBudget:
    def test_charge_accumulates_across_calls(self):
        budget = Budget(max_states=100)
        budget.charge_states(60, "first")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_states(60, "second")
        assert "120 > 100" in str(info.value)
        assert "second" in info.value.reason

    def test_partial_result_rides_on_the_exception(self):
        budget = Budget(max_states=1)
        partial = {"states": 2}
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_states(2, "elaboration", partial=partial)
        assert info.value.partial is partial

    def test_remaining_states_never_hits_zero(self):
        budget = Budget(max_states=10)
        budget.charge_states(10, "all of it")
        # a downstream cap of 0 would mean "unlimited" to some callers
        assert budget.remaining_states(500) == 1

    def test_exhausted_is_non_raising(self):
        budget = Budget(max_states=5)
        budget.charged_states = 6
        assert budget.exhausted


class TestTimeBudget:
    def test_expired_clock_raises_with_reason(self):
        budget = Budget(max_seconds=0.0)
        budget._started -= 1.0
        with pytest.raises(BudgetExceeded) as info:
            budget.check_time("composition")
        assert "wall-clock" in info.value.reason

    def test_seconds_left_is_clamped_at_zero(self):
        budget = Budget(max_seconds=0.5)
        budget._started -= 2.0
        assert budget.seconds_left == 0.0

    def test_restart_resets_both_meters(self):
        budget = Budget(max_states=5, max_seconds=10.0)
        budget.charge_states(3, "warm-up")
        budget._started -= 100.0
        budget.restart()
        assert budget.charged_states == 0
        assert budget.elapsed < 1.0
        budget.check_time("fresh")  # must not raise


class TestInconclusiveSemantics:
    def test_budget_exceeded_is_not_a_verdict(self):
        """BudgetExceeded must stay distinguishable from hazard errors."""
        exc = BudgetExceeded("state budget exceeded: 7 > 5")
        assert isinstance(exc, RuntimeError)
        assert exc.partial is None
