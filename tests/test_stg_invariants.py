"""Tests for Petri-net S/T-invariant analysis."""

import pytest

from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.stg.invariants import (
    incidence_matrix,
    is_consistent_net,
    is_covered_by_s_invariants,
    s_invariants,
    t_invariants,
)
from repro.stg.parser import parse_g

TOGGLE = """
.inputs r
.outputs q
.graph
r+ q+
q+ r-
r- q-
q- r+
.marking { <q-,r+> }
.end
"""


class TestIncidenceMatrix:
    def test_shape_and_entries(self):
        net = parse_g(TOGGLE).net
        places, transitions, matrix = incidence_matrix(net)
        assert len(places) == 4 and len(transitions) == 4
        # each column has exactly one +1 (output place) and one -1
        for j in range(len(transitions)):
            column = [matrix[i][j] for i in range(len(places))]
            assert sorted(column) == [-1, 0, 0, 1]


class TestTInvariants:
    def test_toggle_cycle_all_ones(self):
        net = parse_g(TOGGLE).net
        invariants = t_invariants(net)
        assert len(invariants) == 1
        assert set(invariants[0].values()) == {1}
        assert set(invariants[0]) == net.transitions

    def test_invariant_reproduces_marking(self):
        """Firing a T-invariant's multiset returns to the start marking."""
        stg = parse_g(TOGGLE)
        net = stg.net
        invariant = t_invariants(net)[0]
        marking = stg.initial_marking
        fired = {t: 0 for t in net.transitions}
        guard = 0
        while any(fired[t] < invariant.get(t, 0) for t in net.transitions):
            guard += 1
            assert guard < 100
            for t in net.enabled(marking):
                if fired[t] < invariant.get(t, 0):
                    marking = net.fire(marking, t)
                    fired[t] += 1
                    break
        assert marking == stg.initial_marking

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks_are_consistent(self, name):
        assert is_consistent_net(load_benchmark(name).net), name


class TestSInvariants:
    def test_toggle_single_token_conservation(self):
        net = parse_g(TOGGLE).net
        invariants = s_invariants(net)
        # the 4-place ring conserves exactly one weighted token set
        assert len(invariants) == 1
        assert set(invariants[0].values()) == {1}

    def test_concurrent_net_has_multiple_invariants(self):
        text = """
        .inputs r
        .outputs u v
        .graph
        r+ u+ v+
        u+ r-
        v+ r-
        r- u- v-
        u- r+
        v- r+
        .marking { <u-,r+> <v-,r+> }
        .end
        """
        net = parse_g(text).net
        assert len(s_invariants(net)) >= 2

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks_covered(self, name):
        assert is_covered_by_s_invariants(load_benchmark(name).net), name

    def test_invariant_weight_is_conserved_dynamically(self):
        stg = parse_g(TOGGLE)
        net = stg.net
        invariant = s_invariants(net)[0]

        def weight(marking):
            return sum(invariant.get(p, 0) for p in marking)

        marking = stg.initial_marking
        initial_weight = weight(marking)
        for _ in range(8):
            transition = net.enabled(marking)[0]
            marking = net.fire(marking, transition)
            assert weight(marking) == initial_weight
