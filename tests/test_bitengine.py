"""The bitmask analysis engine against the dict-based reference semantics.

Three layers of evidence that the packed/bitset fast path computes the
same thing the plain dictionaries did:

* a hypothesis property test that ``Cube.compile``'s ``(mask, value)``
  evaluator agrees with ``Cube.covers`` on random cubes and codes,
* per-graph agreement of every engine primitive (packed codes, literal
  bitsets, cube bitsets, successor tables) with the graph's own
  accessors on the paper figures and the stress generators,
* end-to-end equivalence of ``analyze_mc(sg, jobs=2)`` with the serial
  path on all nine Table-1 designs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.figures import figure1_sg, figure3_sg
from repro.corpus import alternator, concurrent_fork, token_ring
from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.boolean.cube import Cube
from repro.core.mc import analyze_mc
from repro.sg.bitengine import bit_analysis
from repro.stg.reachability import stg_to_state_graph

SIGNALS = tuple(f"s{i}" for i in range(8))


def _pack(code, order):
    word = 0
    for position, signal in enumerate(order):
        if code[signal]:
            word |= 1 << position
    return word


@given(
    literals=st.dictionaries(
        st.sampled_from(SIGNALS), st.integers(0, 1), max_size=len(SIGNALS)
    ),
    vector=st.tuples(*([st.integers(0, 1)] * len(SIGNALS))),
)
@settings(max_examples=300, deadline=None)
def test_compiled_cube_matches_dict_covers(literals, vector):
    cube = Cube(literals)
    code = dict(zip(SIGNALS, vector))
    packed = _pack(code, SIGNALS)
    assert cube.covers_packed(packed, SIGNALS) == cube.covers(code)
    mask, value = cube.compile(SIGNALS)
    assert (packed & mask == value) == cube.covers(code)


@given(
    literals=st.dictionaries(
        st.sampled_from(SIGNALS), st.integers(0, 1), max_size=len(SIGNALS)
    )
)
@settings(max_examples=100, deadline=None)
def test_compile_is_stable_and_order_sensitive(literals):
    cube = Cube(literals)
    assert cube.compile(SIGNALS) == cube.compile(SIGNALS)  # memoised
    reordered = tuple(reversed(SIGNALS))
    mask, value = cube.compile(reordered)
    for position, signal in enumerate(reordered):
        expected = cube.value_of(signal)
        assert bool(mask & (1 << position)) == (expected is not None)
        if expected is not None:
            assert bool(value & (1 << position)) == bool(expected)


def _sample_graphs():
    yield figure1_sg()
    yield figure3_sg()
    yield stg_to_state_graph(concurrent_fork(3))
    yield stg_to_state_graph(token_ring(6))
    yield stg_to_state_graph(alternator(2))


@pytest.mark.parametrize("sg", _sample_graphs(), ids=lambda g: g.name)
def test_engine_primitives_match_graph(sg):
    engine = bit_analysis(sg)
    # packed codes encode exactly the graph's codes
    for state in sg.states:
        code = sg.code(state)
        for position, signal in enumerate(engine.signals):
            bit = bool(engine.packed[state] & (1 << position))
            assert bit == bool(code[position]), (state, signal)
    # literal bitsets name exactly the satisfying states
    for position, signal in enumerate(engine.signals):
        for value in (0, 1):
            expected = {
                s for s in sg.states if sg.code(s)[position] == value
            }
            assert engine.states_of(engine.literal_bits(position, value)) == expected
    # cube bitsets agree with the dict evaluator on assorted cubes
    some = sorted(map(str, sg.states))[0]
    state_by_str = {str(s): s for s in sg.states}
    minterm = Cube.minterm(sg.code_dict(state_by_str[some]))
    cubes = [Cube(), minterm] + [
        Cube({signal: v})
        for signal in sg.signals[:3]
        for v in (0, 1)
    ]
    for cube in cubes:
        expected = {s for s in sg.states if cube.covers(sg.code_dict(s))}
        assert engine.states_of(engine.cube_bits(cube)) == expected
        for state in sg.states:
            assert engine.covers_state(cube, state) == cube.covers(
                sg.code_dict(state)
            )
    # successor/predecessor tables mirror the arc lists
    for i, state in enumerate(engine.states):
        succ = {t for _, t in sg.arcs_from(state)}
        pred = {p for _, p in sg.arcs_into(state)}
        assert engine.states_of(engine.succ_bits[i]) == succ
        assert engine.states_of(engine.pred_bits[i]) == pred
        assert engine.states_of(engine.adj_bits[i]) == succ | pred


def test_bits_roundtrip():
    sg = stg_to_state_graph(token_ring(4))
    engine = bit_analysis(sg)
    subset = frozenset(list(sg.states)[::2])
    assert engine.states_of(engine.bits_of(subset)) == subset
    assert engine.states_of(0) == frozenset()
    assert engine.states_of(engine.all_states_bits) == sg.states


def _verdict_key(verdict):
    return (
        verdict.er.signal,
        verdict.er.direction,
        verdict.er.index,
        verdict.mc_cube,
        verdict.private,
        verdict.stuck_stable,
        verdict.stuck_opposite,
    )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_analyze_mc_jobs_equivalence(name):
    """jobs=2 returns verdict-for-verdict the same report as serial."""
    stg = load_benchmark(name)
    serial = analyze_mc(stg_to_state_graph(stg))
    threaded = analyze_mc(stg_to_state_graph(stg), jobs=2)
    assert serial.describe() == threaded.describe()
    assert [_verdict_key(v) for v in serial.verdicts] == [
        _verdict_key(v) for v in threaded.verdicts
    ]


@pytest.mark.parametrize("maker,n", [(concurrent_fork, 4), (token_ring, 8)])
def test_analyze_mc_jobs_equivalence_generators(maker, n):
    stg = maker(n)
    serial = analyze_mc(stg_to_state_graph(stg))
    threaded = analyze_mc(stg_to_state_graph(stg), jobs=3)
    assert serial.describe() == threaded.describe()
