"""Fault-injection engine: MC circuits survive, broken ones are caught."""

import pytest

from repro.core.synthesis import synthesize
from repro.netlist.gates import GateKind
from repro.netlist.netlist import netlist_from_implementation
from repro.verify.budget import Budget
from repro.verify.faults import (
    DETECTION_KINDS,
    delay_storm,
    glitch_campaign,
    non_mc_cover_check,
    random_delay_overrides,
    run_fault_injection,
    stuck_at,
    stuck_campaign,
)

import random


@pytest.fixture(scope="module")
def mc_circuit(request):
    """A synthesized (hence MC) circuit for the toggle closed loop."""
    sg = request.getfixturevalue("toggle_sg")
    return netlist_from_implementation(synthesize(sg), "C"), sg


class TestDelayStorms:
    def test_mc_circuit_survives_every_storm(self, mc_circuit):
        netlist, sg = mc_circuit
        reports = delay_storm(netlist, sg, runs=8, max_events=300, seed=0)
        assert len(reports) == 8
        for report in reports:
            assert report.hazard_free, report.describe()

    def test_overrides_cover_every_gate(self, mc_circuit):
        netlist, _ = mc_circuit
        overrides = random_delay_overrides(netlist, random.Random(0))
        assert set(overrides) == set(netlist.gates)
        for lo, hi in overrides.values():
            assert 0 < lo <= hi


class TestGlitchCampaign:
    def test_outcomes_are_triaged(self, mc_circuit):
        netlist, sg = mc_circuit
        outcomes = glitch_campaign(netlist, sg, runs=10, max_events=300, seed=1)
        assert len(outcomes) == 10
        for outcome in outcomes:
            assert outcome.model == "glitch"
            assert outcome.detected_by in DETECTION_KINDS + (None,)
            assert outcome.detected == (outcome.detected_by is not None)

    def test_some_upsets_are_detected(self, mc_circuit):
        """SEUs are not maskable in general: the campaign must surface at
        least one detection on a real closed loop."""
        netlist, sg = mc_circuit
        outcomes = glitch_campaign(netlist, sg, runs=15, max_events=300, seed=2)
        assert any(o.detected for o in outcomes)


class TestStuckAt:
    def test_surgery_replaces_exactly_one_gate(self, mc_circuit):
        netlist, _ = mc_circuit
        target = sorted(netlist.gates)[0]
        forced = stuck_at(netlist, target, 1)
        stuck = forced.gates[target]
        assert stuck.kind is GateKind.COMPLEX
        pins = {signal: 0 for signal, _ in stuck.inputs}
        assert stuck.next_value(pins, current=0) == 1
        assert stuck.next_value({s: 1 for s in pins}, current=0) == 1
        untouched = [n for n in netlist.gates if n != target]
        for name in untouched:
            assert forced.gates[name] is netlist.gates[name]
        # the original is never mutated
        assert netlist.gates[target].kind is not GateKind.COMPLEX

    def test_stuck_at_zero_is_constant_zero(self, mc_circuit):
        netlist, _ = mc_circuit
        target = sorted(netlist.gates)[0]
        forced = stuck_at(netlist, target, 0)
        stuck = forced.gates[target]
        pins = {signal: 0 for signal, _ in stuck.inputs}
        assert stuck.next_value(pins, current=1) == 0

    def test_bad_arguments_rejected(self, mc_circuit):
        netlist, _ = mc_circuit
        with pytest.raises(ValueError):
            stuck_at(netlist, "no_such_gate", 0)
        with pytest.raises(ValueError):
            stuck_at(netlist, sorted(netlist.gates)[0], 2)

    def test_campaign_detects_stuck_faults(self, mc_circuit):
        netlist, sg = mc_circuit
        outcomes = stuck_campaign(netlist, sg, runs=8, max_events=300, seed=0)
        assert len(outcomes) == 8
        assert any(o.detected for o in outcomes)


class TestNegativeControl:
    def test_non_mc_cover_is_caught(self):
        """Theorem 2's premise matters: a functionally correct cover
        without monotonicity must be flagged hazardous (Example 2)."""
        report = non_mc_cover_check()
        assert not report.hazard_free
        assert report.conflicts or report.conformance_failures


class TestRunFaultInjection:
    def test_full_run_on_mc_circuit(self, mc_circuit):
        netlist, sg = mc_circuit
        report = run_fault_injection(
            netlist, sg, runs=8, max_events=300, seed=0
        )
        assert report.mc_robust, report.describe()
        assert report.truncated is None
        assert len(report.detected) >= 1
        assert "all clean" in report.describe()

    def test_unknown_model_rejected(self, mc_circuit):
        netlist, sg = mc_circuit
        with pytest.raises(ValueError, match="unknown fault model"):
            run_fault_injection(netlist, sg, models=("delay", "cosmic-ray"))

    def test_budget_truncates_gracefully(self, mc_circuit):
        netlist, sg = mc_circuit
        budget = Budget(max_seconds=0.0)
        budget._started -= 1.0
        report = run_fault_injection(netlist, sg, runs=8, budget=budget)
        assert report.truncated is not None
        assert "wall-clock" in report.truncated
        # partial results, never an exception, never a fake verdict
        assert report.mc_robust  # vacuously: no storms completed
        assert report.delay_reports == []
