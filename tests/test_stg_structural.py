"""Unit tests for structural Petri-net classes."""

from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.stg.parser import parse_g
from repro.stg.structural import is_free_choice, is_live_and_safe, is_marked_graph

TOGGLE = """
.inputs r
.outputs q
.graph
r+ q+
q+ r-
r- q-
q- r+
.marking { <q-,r+> }
.end
"""

CHOICE = """
.inputs a b
.outputs q
.graph
p0 a+ b+
a+ q+
q+ a-
a- q-
q- p0
b+ q+/2
q+/2 b-
b- q-/2
q-/2 p0
.marking { p0 }
.end
"""


def test_toggle_is_marked_graph():
    stg = parse_g(TOGGLE)
    assert is_marked_graph(stg.net)
    assert is_free_choice(stg.net)
    assert is_live_and_safe(stg)


def test_choice_is_free_choice_not_marked_graph():
    stg = parse_g(CHOICE)
    assert not is_marked_graph(stg.net)
    assert is_free_choice(stg.net)
    assert is_live_and_safe(stg)


def test_non_free_choice_detected():
    text = """
    .inputs a b
    .outputs q
    .graph
    p0 a+ b+
    p1 a+
    a+ q+
    b+ q+/2
    q+ p0 p1
    q+/2 p0 p1
    .marking { p0 p1 }
    .end
    """
    stg = parse_g(text)
    # a+ consumes {p0, p1} while b+ consumes only p0 -> not free choice
    assert not is_free_choice(stg.net)


def test_dead_transition_not_live():
    text = """
    .inputs a
    .outputs q
    .graph
    p0 a+
    a+ q+
    q+ p0
    p1 a-
    a- q-
    q- p1
    .marking { p0 }
    .end
    """
    # the a-/q- loop never gets a token (and would be inconsistent
    # anyway); liveness fails
    stg = parse_g(text)
    assert not is_live_and_safe(stg)


def test_benchmarks_live_and_safe():
    for name in BENCHMARKS:
        assert is_live_and_safe(load_benchmark(name)), name


def test_nowick_is_free_choice_with_real_choice():
    stg = load_benchmark("nowick")
    assert is_free_choice(stg.net)
    assert not is_marked_graph(stg.net)


def test_marked_graph_benchmarks():
    for name in ("delement", "duplicator", "mp-forward-pkt"):
        assert is_marked_graph(load_benchmark(name).net), name
