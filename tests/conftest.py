"""Shared fixtures: the paper's figures and a few tiny state graphs."""

import pytest

from repro.bench.figures import figure1_sg, figure3_sg, figure4_sg
from repro.sg.builder import sg_from_arcs


@pytest.fixture(scope="session")
def fig1():
    return figure1_sg()


@pytest.fixture(scope="session")
def fig3():
    return figure3_sg()


@pytest.fixture(scope="session")
def fig4():
    return figure4_sg()


@pytest.fixture(scope="session")
def toggle_sg():
    """Minimal two-signal cycle: r (input) drives q (output).

    r+ q+ r- q-; four states, trivially MC-implementable.
    """
    return sg_from_arcs(
        signals=("r", "q"),
        inputs=("r",),
        initial_code=(0, 0),
        arcs=[
            ("s0", "r+", "s1"),
            ("s1", "q+", "s2"),
            ("s2", "r-", "s3"),
            ("s3", "q-", "s0"),
        ],
        initial="s0",
        name="toggle",
    )


@pytest.fixture(scope="session")
def choice_sg():
    """Input choice: the environment fires a or b; output q answers.

    a+ q+ a- q-  |  b+ q+ b- q- ; the initial state is an input
    conflict state but the graph is output semi-modular.
    """
    return sg_from_arcs(
        signals=("a", "b", "q"),
        inputs=("a", "b"),
        initial_code=(0, 0, 0),
        arcs=[
            ("s0", "a+", "sa1"),
            ("sa1", "q+", "sa2"),
            ("sa2", "a-", "sa3"),
            ("sa3", "q-", "s0"),
            ("s0", "b+", "sb1"),
            ("sb1", "q+", "sb2"),
            ("sb2", "b-", "sb3"),
            ("sb3", "q-", "s0"),
        ],
        initial="s0",
        name="choice",
    )


_PIPELINE_CACHE = {}


@pytest.fixture(scope="session")
def pipeline():
    """Session-cached Table-1 pipeline runs (insertion is the slow part)."""
    from repro.bench.suite import run_pipeline

    def run(name, verify=False):
        key = (name, verify)
        if key not in _PIPELINE_CACHE:
            _PIPELINE_CACHE[key] = run_pipeline(name, verify=verify)
        return _PIPELINE_CACHE[key]

    return run


_COMPONENT_CACHE = {}


@pytest.fixture(scope="session")
def component_result():
    """Session-cached full pipeline runs over the component library."""
    from repro import synthesize_from_stg
    from repro.bench.components import COMPONENTS

    def run(name):
        if name not in _COMPONENT_CACHE:
            _COMPONENT_CACHE[name] = synthesize_from_stg(COMPONENTS[name]())
        return _COMPONENT_CACHE[name]

    return run
