"""End-to-end fuzzing: random cyclic specifications through the pipeline.

Random interleavings of per-signal event sequences form consistent
cyclic specifications; each is pushed through the full pipeline and the
library's global invariants are asserted:

* if the MC analysis is satisfied, synthesis succeeds and the circuit
  verifies hazard-free (Theorem 3, fuzzed);
* if insertion is needed and succeeds, the result satisfies MC, hides
  back to the original behaviour (refinement), and verifies hazard-free;
* the implementation always respects CSC (Theorem 4, fuzzed).
"""

import random

import pytest

from repro.core.insertion import InsertionError, insert_state_signals, project_away
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.builder import sg_from_arcs
from repro.sg.conformance import refines
from repro.sg.csc import has_csc
from repro.sg.graph import InconsistentStateGraph
from repro.sg.properties import is_output_semi_modular


def random_cycle(rng, signals, toggles):
    """A random interleaving of alternating per-signal event chains."""
    chains = [
        [f"{signal}{'+' if i % 2 == 0 else '-'}" for i in range(2 * count)]
        for signal, count in zip(signals, toggles)
    ]
    events = []
    positions = [0] * len(chains)
    total = sum(len(c) for c in chains)
    while len(events) < total:
        candidates = [
            i for i, chain in enumerate(chains) if positions[i] < len(chain)
        ]
        index = rng.choice(candidates)
        events.append(chains[index][positions[index]])
        positions[index] += 1
    return events


def build_sg(events, signals, inputs):
    arcs = [
        (f"s{i}", event, f"s{(i + 1) % len(events)}")
        for i, event in enumerate(events)
    ]
    return sg_from_arcs(signals, inputs, (0,) * len(signals), arcs, initial="s0")


@pytest.mark.parametrize("seed", range(16))
def test_pipeline_invariants_on_random_cycles(seed):
    rng = random.Random(seed)
    signals = ("p", "q", "s")
    # bias towards feasible specs: at most one double-toggling signal
    toggles = [1, 1, rng.choice([1, 2])]
    rng.shuffle(toggles)
    events = random_cycle(rng, signals, toggles)
    try:
        sg = build_sg(events, signals, inputs=("p",))
    except InconsistentStateGraph:
        pytest.skip("random interleaving produced inconsistent codes")
    if not is_output_semi_modular(sg):
        pytest.skip("specification itself has internal conflicts")

    report = analyze_mc(sg)
    if report.satisfied:
        final_sg, added = sg, []
    else:
        if len(report.failed) > 5:
            pytest.skip("too many violations for the fuzz budget")
        try:
            result = insert_state_signals(
                sg, max_models=60, max_signals=3, beam_width=3
            )
        except InsertionError:
            pytest.skip("insertion budget exhausted on this random spec")
        final_sg, added = result.sg, result.added_signals
        # behaviour preservation
        assert refines(final_sg, sg, hidden=added)
        projected = final_sg
        for signal in reversed(added):
            projected = project_away(projected, signal)
        assert {
            (projected.code(s), str(e), projected.code(t))
            for s, e, t in projected.arcs()
        } == {(sg.code(s), str(e), sg.code(t)) for s, e, t in sg.arcs()}

    # Theorem 4 (fuzzed): MC => CSC
    assert has_csc(final_sg)

    # Theorem 3 (fuzzed): the implementation verifies hazard-free
    impl = synthesize(final_sg)
    netlist = netlist_from_implementation(impl, "C")
    hazard = verify_speed_independence(netlist, final_sg, max_states=30_000)
    assert hazard.hazard_free, hazard.describe()


@pytest.mark.parametrize("seed", range(10))
def test_regions_synthesis_roundtrip_on_random_cycles(seed):
    """STG synthesis (theory of regions) round-trips random cyclic specs."""
    from repro.sg.conformance import trace_equivalent
    from repro.stg.reachability import stg_to_state_graph
    from repro.stg.synthesis import NotSynthesizableError, stg_from_state_graph

    rng = random.Random(1000 + seed)
    signals = ("p", "q", "s")
    toggles = [rng.choice([1, 2]) for _ in signals]
    events = random_cycle(rng, signals, toggles)
    try:
        sg = build_sg(events, signals, inputs=("p",))
    except InconsistentStateGraph:
        pytest.skip("inconsistent random interleaving")
    try:
        stg = stg_from_state_graph(sg)
    except NotSynthesizableError:
        pytest.skip("needs label splitting beyond occurrence indices")
    back = stg_to_state_graph(stg)
    assert trace_equivalent(back, sg)
