"""Unit tests for whole-graph MC analysis (Definition 18)."""

from repro.core.mc import analyze_mc
from repro.sg.regions import excitation_regions


class TestFig1:
    def test_violated(self, fig1):
        report = analyze_mc(fig1)
        assert not report.satisfied
        failed = {v.er.transition_name for v in report.failed}
        assert failed == {"d+/1", "d+/2"}

    def test_stuck_states_of_d_plus_1(self, fig1):
        report = analyze_mc(fig1)
        verdict = next(v for v in report.failed if v.er.transition_name == "d+/1")
        assert verdict.stuck_states == frozenset({"0000", "0001"})
        # 0000 is stably 0 (strict); 0001 is the falling region (delayable)
        assert verdict.stuck_stable == frozenset({"0000"})
        assert verdict.stuck_opposite == frozenset({"0001"})

    def test_passing_regions_have_cubes(self, fig1):
        report = analyze_mc(fig1)
        cubes = report.mc_cubes()
        names = {er.transition_name for er in cubes}
        assert {"c+/1", "c+/2", "c-/1", "d-/1"} <= names

    def test_describe_mentions_failures(self, fig1):
        text = analyze_mc(fig1).describe()
        assert "VIOLATED" in text
        assert "d+/1" in text


class TestFig3:
    def test_satisfied_with_sharing(self, fig3):
        report = analyze_mc(fig3)
        assert report.satisfied
        # Definition 18 proper (private cube per region) does NOT hold:
        # Sd = x' is shared between the two up-regions of d
        assert not report.strictly_satisfied

    def test_shared_group_recorded(self, fig3):
        report = analyze_mc(fig3)
        ups = [e for e in excitation_regions(fig3, "d") if e.direction == 1]
        verdict = report.verdict_for(ups[0])
        assert len(verdict.group) == 2
        assert not verdict.private


class TestFig4:
    def test_only_er_b_plus_1_fails(self, fig4):
        report = analyze_mc(fig4)
        failed = {v.er.transition_name for v in report.failed}
        assert failed == {"b+/1"}

    def test_stuck_state_is_the_paper_witness(self, fig4):
        """The paper: cube a covers state 10*01 (= s1001) of ER(+b,2)."""
        report = analyze_mc(fig4)
        verdict = report.failed[0]
        assert "s1001" in verdict.stuck_states


class TestTrivialGraphs:
    def test_toggle_satisfied(self, toggle_sg):
        report = analyze_mc(toggle_sg)
        assert report.satisfied
        assert report.strictly_satisfied

    def test_choice_satisfied(self, choice_sg):
        assert analyze_mc(choice_sg).satisfied

    def test_verdict_for_unknown_region_raises(self, toggle_sg):
        import pytest
        from repro.sg.regions import ExcitationRegion

        report = analyze_mc(toggle_sg)
        with pytest.raises(KeyError):
            report.verdict_for(ExcitationRegion("z", 1, 1, frozenset()))
