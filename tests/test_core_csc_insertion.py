"""Tests for CSC-only insertion and the complex-gate repair flow."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.csc import insert_for_csc
from repro.core.insertion import insert_state_signals, project_away
from repro.netlist.hazards import verify_speed_independence
from repro.sg.conformance import refines
from repro.sg.csc import has_csc
from repro.stg.reachability import stg_to_state_graph


class TestCSCInsertion:
    def test_delement_one_signal(self):
        sg = stg_to_state_graph(load_benchmark("delement"))
        assert not has_csc(sg)
        result = insert_for_csc(sg)
        assert result.satisfied
        assert len(result.added_signals) == 1

    def test_csc_clean_graph_untouched(self, fig1):
        result = insert_for_csc(fig1)
        assert result.added_signals == []
        assert result.sg is fig1

    def test_behaviour_preserved(self):
        sg = stg_to_state_graph(load_benchmark("berkel2"))
        result = insert_for_csc(sg)
        assert refines(result.sg, sg, hidden=result.added_signals)
        projected = result.sg
        for signal in reversed(result.added_signals):
            projected = project_away(projected, signal)
        assert {
            (projected.code(s), str(e), projected.code(t))
            for s, e, t in projected.arcs()
        } == {(sg.code(s), str(e), sg.code(t)) for s, e, t in sg.arcs()}

    def test_complex_gate_flow_after_repair(self):
        sg = stg_to_state_graph(load_benchmark("luciano"))
        result = insert_for_csc(sg)
        impl = complex_gate_synthesize(result.sg)
        netlist = complex_gate_netlist(impl)
        report = verify_speed_independence(netlist, result.sg)
        assert report.hazard_free

    def test_rounds_recorded(self):
        sg = stg_to_state_graph(load_benchmark("delement"))
        result = insert_for_csc(sg)
        assert len(result.rounds) == 1
        assert result.rounds[0].failures_after == 0


class TestPriceOfBasicGates:
    def test_fig1_csc_free_mc_costly(self, fig1):
        """The sharpest contrast: Figure 1 needs 0 signals for complex
        gates (CSC holds) but 1 for basic gates (MC fails)."""
        assert has_csc(fig1)
        csc_result = insert_for_csc(fig1)
        mc_result = insert_state_signals(fig1, max_models=400)
        assert len(csc_result.added_signals) == 0
        assert len(mc_result.added_signals) == 1

    @pytest.mark.parametrize("name", ["delement", "berkel2", "luciano"])
    def test_csc_never_needs_more_than_mc(self, name):
        sg = stg_to_state_graph(load_benchmark(name))
        csc_count = len(insert_for_csc(sg).added_signals)
        mc_count = len(insert_state_signals(sg, max_models=400).added_signals)
        assert csc_count <= mc_count
