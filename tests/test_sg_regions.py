"""Unit tests for region machinery (Definitions 5-11), on Figure 1.

Every expectation here is a fact the paper states or directly implies
about the Figure-1 state graph.
"""

import pytest

from repro.sg.regions import (
    all_excitation_regions,
    concurrent_signals,
    constant_function_region,
    entry_state,
    excitation_regions,
    excited_value_sets,
    has_unique_entry,
    minimal_states,
    ordered_signals,
    quiescent_region,
    trigger_events,
    trigger_signals,
)


def er_of(sg, signal, direction, index=1):
    for er in excitation_regions(sg, signal):
        if er.direction == direction and er.index == index:
            return er
    raise AssertionError(f"no ER({signal}, {direction}, {index})")


class TestExcitationRegions:
    def test_er_d_plus_1_states(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        assert er.states == frozenset({"1000", "1010", "0010"})

    def test_er_d_plus_2_is_isolated_1110(self, fig1):
        er = er_of(fig1, "d", +1, 2)
        assert er.states == frozenset({"1110"})

    def test_er_d_minus_single(self, fig1):
        er = er_of(fig1, "d", -1, 1)
        assert er.states == frozenset({"0001"})

    def test_er_c_plus_splits_into_two_regions(self, fig1):
        ups = [e for e in excitation_regions(fig1, "c") if e.direction == 1]
        assert len(ups) == 2
        assert frozenset({"1000", "1001"}) in {e.states for e in ups}
        assert frozenset({"0100"}) in {e.states for e in ups}

    def test_indexing_is_bfs_deterministic(self, fig1):
        er1 = er_of(fig1, "c", +1, 1)
        assert "1000" in er1.states  # discovered before 0100's region? no:
        # BFS from 0000 finds 1000 (via a+) and 0100 (via b+) in arc-sorted
        # order a+ < b+, so index 1 belongs to the {1000, 1001} region.

    def test_all_excitation_regions_non_inputs_only(self, fig1):
        regions = all_excitation_regions(fig1, only_non_inputs=True)
        assert {er.signal for er in regions} == {"c", "d"}

    def test_transition_name(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        assert er.transition_name == "d+/1"
        assert er.event.signal == "d"


class TestQuiescentRegions:
    def test_qr_d_plus_1(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        assert quiescent_region(fig1, er) == frozenset(
            {"1001", "1011", "1111", "0111", "0101", "0011"}
        )

    def test_qr_shared_between_d_regions(self, fig1):
        # both up-regions of d exit into the same stable blob
        qr1 = quiescent_region(fig1, er_of(fig1, "d", +1, 1))
        qr2 = quiescent_region(fig1, er_of(fig1, "d", +1, 2))
        assert qr1 == qr2

    def test_cfr_is_union(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        cfr = constant_function_region(fig1, er)
        assert cfr == er.states | quiescent_region(fig1, er)

    def test_qr_empty_when_no_stable_exit(self, toggle_sg):
        er = er_of(toggle_sg, "q", +1, 1)
        # q+ leads to a state where q is stable -> QR non-empty here
        assert quiescent_region(toggle_sg, er)


class TestMinimalStatesAndEntry:
    def test_unique_entry_of_er_d_plus_1(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        assert minimal_states(fig1, er) == frozenset({"1000"})
        assert has_unique_entry(fig1, er)
        assert entry_state(fig1, er) == "1000"

    def test_entry_state_raises_without_unique_entry(self, fig1):
        er = er_of(fig1, "d", +1, 1)
        # fabricate a two-minimal-state region by unioning both d regions
        from repro.sg.regions import ExcitationRegion

        fused = ExcitationRegion(
            "d", +1, 1, er.states | er_of(fig1, "d", +1, 2).states
        )
        with pytest.raises(ValueError):
            entry_state(fig1, fused)


class TestTriggers:
    def test_only_trigger_of_er_d_plus_1_is_a_plus(self, fig1):
        """The paper: 'we can reach the minimal state of ER(+d1) only by
        transition +a1 firing ... the only one trigger transition'."""
        er = er_of(fig1, "d", +1, 1)
        assert {str(e) for e in trigger_events(fig1, er)} == {"a+"}
        assert trigger_signals(fig1, er) == {"a"}

    def test_trigger_of_er_d_plus_2(self, fig1):
        er = er_of(fig1, "d", +1, 2)
        assert {str(e) for e in trigger_events(fig1, er)} == {"a+"}


class TestOrderedConcurrent:
    def test_er_d_plus_1_ordered_only_b(self, fig1):
        """a falls and c rises inside ER(+d1), so only b is ordered --
        which is why no single cube can cover the region correctly."""
        er = er_of(fig1, "d", +1, 1)
        assert ordered_signals(fig1, er) == {"b"}
        assert concurrent_signals(fig1, er) == {"a", "c", "d"}

    def test_singleton_region_all_others_ordered(self, fig1):
        er = er_of(fig1, "d", -1, 1)
        assert ordered_signals(fig1, er) == {"a", "b", "c"}


class TestValueSets:
    def test_partition_of_states(self, fig1):
        sets = excited_value_sets(fig1, "d")
        union = (
            sets["0-set"] | sets["0*-set"] | sets["1-set"] | sets["1*-set"]
        )
        assert union == fig1.states
        assert not sets["0-set"] & sets["0*-set"]
        assert not sets["1-set"] & sets["1*-set"]

    def test_star_sets_are_er_unions(self, fig1):
        sets = excited_value_sets(fig1, "d")
        ups = [e for e in excitation_regions(fig1, "d") if e.direction == 1]
        assert sets["0*-set"] == frozenset().union(*(e.states for e in ups))
        assert sets["1*-set"] == frozenset({"0001"})
