"""Integration tests: every claim the paper makes about its figures.

Each test quotes or paraphrases the corresponding statement from the
paper; together they certify the figure data and the analysis pipeline
against the published text.
"""


import pytest

from repro.boolean.cube import Cube
from repro.core.covers import find_correct_cover_cubes, find_monotonous_cover
from repro.core.insertion import insert_state_signals, project_away
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.sg.csc import has_csc, has_usc
from repro.sg.properties import (
    conflict_states,
    is_output_distributive,
    is_output_semi_modular,
    is_persistent,
    is_semi_modular,
    non_persistent_pairs,
)
from repro.sg.regions import excitation_regions, minimal_states, trigger_events

pytestmark = pytest.mark.smoke


def er_of(sg, signal, direction, index=1):
    for er in excitation_regions(sg, signal):
        if er.direction == direction and er.index == index:
            return er
    raise AssertionError


class TestFigure1Claims:
    def test_14_states_4_signals(self, fig1):
        assert len(fig1) == 14
        assert fig1.signals == ("a", "b", "c", "d")
        assert fig1.inputs == frozenset({"a", "b"})

    def test_initial_state_is_an_input_conflict(self, fig1):
        """'In its initial state 0*0*00, both a and b are excited but the
        firing of any one of them disables the excitation of the other.'"""
        assert {c.state for c in conflict_states(fig1)} == {"0000"}
        assert not is_semi_modular(fig1)

    def test_output_semi_modular_and_distributive(self, fig1):
        """'There are no other conflict states ... so it is output
        semi-modular'; 'There are no detonant states ... and this SG is
        output distributive.'"""
        assert is_output_semi_modular(fig1)
        assert is_output_distributive(fig1)

    def test_unique_entry_and_single_trigger(self, fig1):
        """'We can reach the minimal state of ER(+d1) (state 100*0*) only
        by transition +a1 firing ... the only one trigger transition.'"""
        er = er_of(fig1, "d", +1, 1)
        assert minimal_states(fig1, er) == frozenset({"1000"})
        assert {str(e) for e in trigger_events(fig1, er)} == {"a+"}

    def test_non_persistency_of_plus_a(self, fig1):
        """'Inside ER(+d1) transition -a1 is excited that leads to the
        non-persistency of +a1 with respect to +d1.'"""
        assert not is_persistent(fig1)
        assert any(
            v.trigger == "a" and v.er.transition_name == "d+/1"
            for v in non_persistent_pairs(fig1)
        )

    def test_impossible_to_cover_er_d1_with_one_cube(self, fig1):
        """'It is impossible to cover ER(+d) with one cube -- two cubes
        are required for the correct cover.'"""
        er = er_of(fig1, "d", +1, 1)
        assert find_monotonous_cover(fig1, er) is None
        cubes = find_correct_cover_cubes(fig1, er)
        assert len(cubes) == 2

    def test_csc_holds(self, fig1):
        # MC fails although CSC holds: MC is strictly stronger
        assert has_usc(fig1) and has_csc(fig1)

    def test_one_added_signal_suffices(self, fig1):
        """'To ensure this it is sufficient to add only one signal x.'"""
        result = insert_state_signals(fig1, max_models=400)
        assert len(result.added_signals) == 1


class TestFigure3Claims:
    def test_17_states_5_signals(self, fig3):
        assert len(fig3) == 17
        assert fig3.signals == ("a", "b", "c", "d", "x")

    def test_projection_restores_figure1(self, fig1, fig3):
        projected = project_away(fig3, "x")
        original = {
            (fig1.code(s), str(e), fig1.code(t)) for s, e, t in fig1.arcs()
        }
        back = {
            (projected.code(s), str(e), projected.code(t))
            for s, e, t in projected.arcs()
        }
        assert original == back

    def test_x_region_structure(self, fig3):
        """The figure labels one ER(+x) and two ER(-x) regions."""
        regions = excitation_regions(fig3, "x")
        ups = [e for e in regions if e.direction == 1]
        downs = [e for e in regions if e.direction == -1]
        assert len(ups) == 1 and len(downs) == 2

    def test_equations_2(self, fig3):
        """'From this SG the following implementation on simple gates can
        be derived' -- equations (2), with overbars restored and the
        polarity of x flipped (d = x' here, d = x in the paper's print)."""
        impl = synthesize(fig3, share_gates=True)
        assert impl.network("x").set_cover.cubes == (
            Cube({"a": 0, "b": 0, "c": 0}),
        )
        assert impl.network("x").reset_cover.cubes == (Cube({"a": 1}),)
        assert impl.network("d").wire_source == ("x", 0)
        c = impl.network("c")
        assert len(c.set_cover) == 2
        assert Cube({"b": 1, "d": 0}) in c.set_cover.cubes  # S(c)1 = bd'
        assert Cube({"a": 1, "b": 0, "x": 0}) in c.set_cover.cubes  # = xab
        assert c.reset_cover.cubes == (Cube({"a": 0, "b": 1, "d": 1}),)

    def test_nearly_no_added_complexity(self, fig1, fig3):
        """'The reduction to MC form adds nearly nothing to the
        complexity of implementation (compare to equations (1)).'"""
        from repro.core.baseline import baseline_synthesize

        baseline = baseline_synthesize(fig1)
        mc = synthesize(fig3, share_gates=True)
        # within a couple of literals of the baseline
        assert mc.literal_count() <= baseline.literal_count() + 4


class TestFigure4Claims:
    def test_15_states_with_duplicated_code(self, fig4):
        assert len(fig4) == 15
        assert not has_usc(fig4)
        assert has_csc(fig4)

    def test_persistent_and_baseline_accepting(self, fig4):
        """'This SG is persistent and ... all the correctness conditions
        pointed in the method [2] are satisfied.'"""
        assert is_persistent(fig4)
        er1 = er_of(fig4, "b", +1, 1)
        er2 = er_of(fig4, "b", +1, 2)
        assert find_correct_cover_cubes(fig4, er1) == [Cube({"a": 1})]
        assert find_correct_cover_cubes(fig4, er2) == [Cube({"c": 0, "d": 1})]

    def test_cube_a_covers_foreign_region_state(self, fig4):
        """'Cube a that covers ER(+b1) also covers the state 100*1 from
        ER(+b2).'"""
        er2 = er_of(fig4, "b", +1, 2)
        assert "s1001" in er2.states
        assert Cube({"a": 1}).covers(fig4.code_dict("s1001"))

    def test_mc_recognizes_and_one_signal_fixes(self, fig4):
        """'MC requirement easily recognizes this situation and can
        remove the hazard by adding one signal.'"""
        report = analyze_mc(fig4)
        assert {v.er.transition_name for v in report.failed} == {"b+/1"}
        result = insert_state_signals(fig4, max_models=400)
        assert len(result.added_signals) == 1
        assert analyze_mc(result.sg).satisfied
