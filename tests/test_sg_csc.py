"""Unit tests for USC/CSC (Definition 14)."""

from repro.sg.csc import csc_conflicts, has_csc, has_usc, usc_conflicts
from repro.stg.parser import parse_g
from repro.stg.reachability import stg_to_state_graph


def test_fig1_has_usc_and_csc(fig1):
    assert has_usc(fig1)
    assert has_csc(fig1)


def test_fig3_has_usc_and_csc(fig3):
    assert has_usc(fig3)
    assert has_csc(fig3)


def test_fig4_usc_violation_without_csc_violation(fig4):
    """Figure 4 has two states coded 1100, but neither excites the output,
    so CSC holds while USC fails."""
    assert not has_usc(fig4)
    assert has_csc(fig4)
    pairs = usc_conflicts(fig4)
    assert len(pairs) == 1
    assert {s for pair in pairs for s in pair} == {"s1100a", "s1100c"}


def test_delement_csc_conflict():
    """The D-element's classic conflict: code 1000 occurs both before c+
    and before b+ -- different excited outputs."""
    text = """
    .model delement
    .inputs a d
    .outputs b c
    .graph
    a+ c+
    c+ d+
    d+ c-
    c- d-
    d- b+
    b+ a-
    a- b-
    b- a+
    .marking { <b-,a+> }
    .end
    """
    sg = stg_to_state_graph(parse_g(text))
    assert not has_usc(sg)
    assert not has_csc(sg)
    assert len(csc_conflicts(sg)) == 1


def test_toggle_usc(toggle_sg):
    assert has_usc(toggle_sg)
    assert has_csc(toggle_sg)


def test_csc_ok_when_same_code_same_outputs(choice_sg):
    # the two post-release states sa3/sb3 share code 001 but both excite
    # exactly q- -- a USC violation that CSC tolerates (Def. 14 case 2)
    assert not has_usc(choice_sg)
    assert has_csc(choice_sg)
    assert usc_conflicts(choice_sg) == [("sa3", "sb3")]
