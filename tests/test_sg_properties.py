"""Unit tests for behavioural properties (Definitions 1-4, 12)."""

from repro.sg.builder import sg_from_arcs
from repro.sg.properties import (
    conflict_states,
    detonant_states,
    is_distributive,
    is_output_distributive,
    is_output_semi_modular,
    is_persistent,
    is_semi_modular,
    non_persistent_pairs,
)


class TestConflicts:
    def test_fig1_initial_state_is_input_conflict(self, fig1):
        """The paper: firing a or b in 0*0*00 disables the other."""
        conflicts = conflict_states(fig1)
        states = {c.state for c in conflicts}
        assert states == {"0000"}
        assert {c.signal for c in conflicts} == {"a", "b"}

    def test_fig1_no_internal_conflicts(self, fig1):
        assert conflict_states(fig1, fig1.non_inputs) == []

    def test_fig1_semi_modularity(self, fig1):
        assert not is_semi_modular(fig1)       # the input conflict
        assert is_output_semi_modular(fig1)    # but outputs are clean

    def test_fig4_output_semi_modular(self, fig4):
        assert is_output_semi_modular(fig4)

    def test_toggle_fully_semi_modular(self, toggle_sg):
        assert is_semi_modular(toggle_sg)

    def test_choice_has_input_conflict_only(self, choice_sg):
        assert not is_semi_modular(choice_sg)
        assert is_output_semi_modular(choice_sg)

    def test_internal_conflict_detected(self):
        # output q gets disabled by input r firing: r+ disables q+
        sg = sg_from_arcs(
            ("r", "q"),
            ("r",),
            (0, 0),
            [
                ("s0", "q+", "s1"),   # q excited in s0
                ("s0", "r+", "s2"),   # r+ kills it: s2 does not excite q
                ("s2", "r-", "s0"),
                ("s1", "q-", "s0"),
            ],
        )
        internal = conflict_states(sg, sg.non_inputs)
        assert len(internal) == 1
        assert internal[0].signal == "q"
        assert str(internal[0].by) == "r+"
        assert not is_output_semi_modular(sg)


class TestDetonants:
    def test_fig1_has_no_detonants(self, fig1):
        """The paper: 'there are no detonant states in the SG of Fig. 1'
        -- the two successors of 0000 excite *different* regions of c."""
        assert detonant_states(fig1, set(fig1.signals)) == []
        assert is_output_distributive(fig1)

    def test_fig4_output_distributive(self, fig4):
        assert is_output_distributive(fig4)

    def test_toggle_distributive(self, toggle_sg):
        assert is_distributive(toggle_sg)

    def test_same_region_or_causality_is_detonant(self):
        # two concurrent inputs a, b; output q becomes excited after
        # EITHER fires, into the same excitation region -> detonant.
        sg = sg_from_arcs(
            ("a", "b", "q"),
            ("a", "b"),
            (0, 0, 0),
            [
                ("s0", "a+", "sa"),
                ("s0", "b+", "sb"),
                ("sa", "b+", "sab"),
                ("sb", "a+", "sab"),
                ("sa", "q+", "saq"),
                ("sb", "q+", "sbq"),
                ("sab", "q+", "sabq"),
                ("saq", "b+", "sabq"),
                ("sbq", "a+", "sabq"),
                ("sabq", "a-", "t1"),
                ("t1", "b-", "t2"),
                ("t2", "q-", "s0"),
            ],
        )
        detonants = detonant_states(sg)
        assert any(d.state == "s0" and d.signal == "q" for d in detonants)
        assert not is_output_distributive(sg)
        # it is still output semi-modular: q never gets disabled
        assert is_output_semi_modular(sg)


class TestPersistency:
    def test_fig1_non_persistent(self, fig1):
        """The paper: +a is a non-persistent trigger of ER(+d1)."""
        violations = non_persistent_pairs(fig1)
        assert any(
            v.trigger == "a" and v.er.signal == "d" and v.er.direction == 1
            for v in violations
        )
        assert not is_persistent(fig1)

    def test_fig4_persistent(self, fig4):
        """The paper: 'This SG is persistent' -- yet not MC-implementable,
        which is the whole point of Example 2."""
        assert is_persistent(fig4)

    def test_toggle_persistent(self, toggle_sg):
        assert is_persistent(toggle_sg)
