"""Unit tests for the SG text format."""

import pytest

from repro.sg import io as sgio


def test_roundtrip_fig1(fig1):
    text = sgio.dumps(fig1)
    back = sgio.loads(text)
    assert back.signals == fig1.signals
    assert back.inputs == fig1.inputs
    assert back.initial == fig1.initial
    assert {(str(s), str(e), str(t)) for s, e, t in back.arcs()} == {
        (str(s), str(e), str(t)) for s, e, t in fig1.arcs()
    }
    assert {s: back.code(s) for s in back.states} == {
        s: fig1.code(s) for s in fig1.states
    }


def test_roundtrip_fig4_with_usc_violation(fig4):
    back = sgio.loads(sgio.dumps(fig4))
    assert len(back) == len(fig4)
    codes = sorted(back.code(s) for s in back.states)
    assert codes == sorted(fig4.code(s) for s in fig4.states)


def test_comments_and_blank_lines_ignored():
    text = """
    # a comment
    .model demo
    .inputs a
    .outputs q

    .order a q
    .state s0 00  # trailing comment
    .state s1 10
    .arc s0 a+ s1
    .initial s0
    .end
    """
    sg = sgio.loads(text)
    assert sg.name == "demo"
    assert len(sg) == 2


def test_missing_initial_rejected():
    with pytest.raises(ValueError):
        sgio.loads(".state s0 0\n.end\n")


def test_unknown_directive_rejected():
    with pytest.raises(ValueError):
        sgio.loads(".bogus x\n")


def test_file_roundtrip(tmp_path, fig1):
    path = tmp_path / "fig1.sg"
    sgio.save(fig1, str(path))
    back = sgio.load(str(path))
    assert len(back) == len(fig1)
