"""Targeted tests for internal helpers across the core modules."""

import pytest

from repro.boolean.cube import Cube
from repro.core.covers import _partitions, find_generalized_monotonous_cover
from repro.core.insertion import (
    InsertionRound,
    _failure_signature,
    _fresh_signal_name,
    _mc_score,
    _new_input_conflicts,
    expand_with_signal,
)
from repro.core.mc import analyze_mc
from repro.sg.regions import excitation_regions


class TestPartitions:
    def test_counts_are_bell_numbers(self):
        # Bell numbers: 1, 1, 2, 5, 15
        for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)]:
            assert sum(1 for _ in _partitions(list(range(n)))) == bell

    def test_finest_partition_first(self):
        first = next(_partitions([1, 2, 3]))
        assert first == [[1], [2], [3]]

    def test_every_partition_covers_all(self):
        for partition in _partitions([1, 2, 3, 4]):
            flat = sorted(x for group in partition for x in group)
            assert flat == [1, 2, 3, 4]


class TestScoring:
    def test_mc_score_orders_reports(self, fig1, fig3):
        bad = analyze_mc(fig1)
        good = analyze_mc(fig3)
        assert _mc_score(good) < _mc_score(bad)
        assert _mc_score(good) == (0, 0)

    def test_failure_signature_deterministic(self, fig1):
        left = _failure_signature(analyze_mc(fig1))
        right = _failure_signature(analyze_mc(fig1))
        assert left == right
        assert left == ("d+/1", "d+/2")


class TestFreshNames:
    def test_prefers_bare_prefix(self, toggle_sg):
        assert _fresh_signal_name(toggle_sg, "x", 0) == "x"

    def test_avoids_collisions(self, fig3):
        # fig3 already has a signal x
        assert _fresh_signal_name(fig3, "x", 0) == "x0"
        assert _fresh_signal_name(fig3, "x", 1) == "x1"


class TestInputConflictGuard:
    def test_no_new_conflicts_on_clean_expansion(self, toggle_sg):
        labelling = {"s0": "0", "s1": "U", "s2": "1", "s3": "D"}
        expanded = expand_with_signal(toggle_sg, labelling, "x")
        assert not _new_input_conflicts(toggle_sg, expanded)

    def test_existing_input_conflicts_tolerated(self, choice_sg):
        # choice_sg has a legitimate input conflict at s0; a labelling
        # keeping it intact must not be rejected
        labelling = {s: "0" for s in choice_sg.states}
        labelling["sa1"] = "U"
        labelling["sa2"] = "D"
        try:
            expanded = expand_with_signal(choice_sg, labelling, "x")
        except ValueError:
            pytest.skip("labelling structurally invalid for this graph")
        assert not _new_input_conflicts(choice_sg, expanded)


class TestGeneralizedCoverEdgeCases:
    def test_single_region_delegates_to_private_search(self, fig1):
        downs = [e for e in excitation_regions(fig1, "d") if e.direction == -1]
        cube = find_generalized_monotonous_cover(fig1, downs)
        assert cube == Cube({"a": 0, "b": 0, "c": 0})

    def test_empty_region_list(self, fig1):
        assert find_generalized_monotonous_cover(fig1, []) is None

    def test_incompatible_regions_have_no_common_cube(self, fig1):
        regions = excitation_regions(fig1, "d")
        up1 = next(e for e in regions if e.transition_name == "d+/1")
        down = next(e for e in regions if e.direction == -1)
        assert find_generalized_monotonous_cover(fig1, [up1, down]) is None


class TestInsertionRoundRecord:
    def test_fields(self, fig4):
        from repro.core.insertion import insert_state_signals

        result = insert_state_signals(fig4, max_models=400)
        round_ = result.rounds[0]
        assert isinstance(round_, InsertionRound)
        assert round_.failures_before > round_.failures_after
        assert set(round_.labelling) == set(fig4.states)
