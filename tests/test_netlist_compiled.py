"""Packed gate evaluation and circuit composition on the compiled IR.

Every gate kind's :meth:`compiled_evaluator` closure must agree with the
dict-based :meth:`next_value` reference on every input code, and the
packed BFS in :func:`build_circuit_state_graph` must reproduce the
reference composition -- states, arcs, diagnostics and parent pointers
-- exactly, because serialized artifacts depend on that order.
"""

import itertools

import pytest

from repro.boolean.compiled import SignalSpace
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.core.synthesis import synthesize
from repro.netlist.area import area_estimate, gate_transistors
from repro.netlist.circuit_sg import (
    build_circuit_state_graph,
    build_circuit_state_graph_reference,
)
from repro.netlist.gates import Gate, GateKind
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import (
    Netlist,
    NetlistError,
    NetlistPlan,
    netlist_from_implementation,
)

pytestmark = pytest.mark.smoke

GATE_CASES = [
    Gate("y", GateKind.AND, (("a", 1), ("b", 1), ("c", 0))),
    Gate("y", GateKind.NAND, (("a", 1), ("b", 0))),
    Gate("y", GateKind.OR, (("a", 1), ("b", 0), ("c", 1))),
    Gate("y", GateKind.NOR, (("a", 0), ("b", 1))),
    Gate("y", GateKind.BUF, (("a", 1),)),
    Gate("y", GateKind.BUF, (("a", 0),)),
    Gate("y", GateKind.NOT, (("a", 1),)),
    Gate("y", GateKind.C, (("a", 1), ("b", 0))),
    Gate("y", GateKind.RS, (("a", 1), ("b", 1))),
    Gate("y", GateKind.RS, (("a", 0), ("b", 1))),
    Gate(
        "y",
        GateKind.COMPLEX,
        (("a", 1), ("b", 1), ("c", 1)),
        function=Cover([Cube({"a": 1, "b": 0}), Cube({"c": 1})]),
    ),
    # unsatisfiable conjunction: the same signal at both polarities
    Gate("y", GateKind.AND, (("a", 1), ("a", 0))),
    Gate("y", GateKind.NOR, (("a", 1), ("a", 0))),
]


class TestCompiledEvaluatorParity:
    """compiled_evaluator == next_value over every code and held value."""

    space = SignalSpace.of(("a", "b", "c", "y"))

    @pytest.mark.parametrize(
        "gate", GATE_CASES, ids=lambda g: f"{g.kind.value}-{len(g.inputs)}in"
    )
    def test_every_code(self, gate):
        evaluate = gate.compiled_evaluator(self.space)
        for word in range(1 << len(self.space)):
            values = self.space.unpack(word)
            for current in (0, 1):
                assert evaluate(word, current) == gate.next_value(
                    values, current
                ), (gate.kind, values, current)

    def test_empty_cover_complex_is_constant_zero(self):
        gate = Gate("y", GateKind.COMPLEX, (), function=Cover([]))
        evaluate = gate.compiled_evaluator(self.space)
        for word in range(1 << len(self.space)):
            assert evaluate(word, 1) == 0 == gate.next_value(
                self.space.unpack(word), 1
            )


class TestNetlistPlan:
    def wire(self):
        netlist = Netlist("wire", inputs=("r",), interface_outputs=("q",))
        netlist.add_gate(Gate("q", GateKind.BUF, (("r", 1),)))
        return netlist

    def test_items_follow_gate_insertion_order(self):
        netlist = self.wire()
        netlist.add_gate(Gate("n", GateKind.NOT, (("q", 1),)))
        plan = NetlistPlan(netlist)
        assert [name for name, _, _ in plan.items] == ["q", "n"]
        assert plan.space.signals == ("r", "q", "n")
        assert plan.input_bits == {"r": 1}

    def test_rs_checks_cover_satisfiable_latches_only(self):
        netlist = Netlist("latch", inputs=("s", "r"), interface_outputs=("q",))
        netlist.add_gate(Gate("q", GateKind.RS, (("s", 1), ("r", 1))))
        # S = R = s: the illegal S = R = 1 conjunction is unsatisfiable
        netlist.add_gate(Gate("p", GateKind.RS, (("s", 1), ("s", 0))))
        plan = NetlistPlan(netlist)
        assert [name for name, _, _ in plan.rs_checks] == ["q"]
        name, mask, value = plan.rs_checks[0]
        assert mask == value == plan.pack({"s": 1, "r": 1, "q": 0, "p": 0})

    def test_absent_signal_is_a_netlist_error(self):
        netlist = self.wire()
        netlist.add_gate(Gate("x", GateKind.AND, (("q", 1), ("ghost", 1))))
        with pytest.raises(NetlistError, match="ghost"):
            NetlistPlan(netlist)

    def test_absent_signal_in_complex_cover(self):
        netlist = self.wire()
        netlist.add_gate(
            Gate(
                "x",
                GateKind.COMPLEX,
                (("q", 1),),
                function=Cover([Cube({"q": 1, "ghost": 0})]),
            )
        )
        with pytest.raises(NetlistError):
            NetlistPlan(netlist)


def assert_same_composition(packed, reference):
    assert packed.sg.initial == reference.sg.initial
    assert packed.sg.signals == reference.sg.signals
    assert packed.sg.inputs == reference.sg.inputs
    assert packed.sg.states == reference.sg.states
    assert sorted(packed.sg.arcs()) == sorted(reference.sg.arcs())
    for state in reference.sg.states:
        assert packed.sg.code(state) == reference.sg.code(state)
        assert packed.sg.arcs_from(state) == reference.sg.arcs_from(state)
    assert packed.conformance_failures == reference.conformance_failures
    assert packed.rs_violations == reference.rs_violations
    assert packed.truncated == reference.truncated
    assert packed.parents == reference.parents


class TestCompositionParity:
    """Packed BFS reproduces the dict reference byte for byte."""

    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_fig3(self, fig3, style):
        netlist = netlist_from_implementation(synthesize(fig3), style)
        assert_same_composition(
            build_circuit_state_graph(netlist, fig3),
            build_circuit_state_graph_reference(netlist, fig3),
        )

    def test_hazardous_fig4_baseline(self, fig4):
        """Diagnostics (conflicts, failures) must match on a hazardous net."""
        from repro.core.baseline import baseline_synthesize

        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        packed = build_circuit_state_graph(netlist, fig4)
        assert_same_composition(
            packed, build_circuit_state_graph_reference(netlist, fig4)
        )

    def test_small_specs(self, toggle_sg, choice_sg):
        for spec in (toggle_sg, choice_sg):
            netlist = netlist_from_implementation(synthesize(spec), "C")
            assert_same_composition(
                build_circuit_state_graph(netlist, spec),
                build_circuit_state_graph_reference(netlist, spec),
            )

    def test_truncation_parity(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        packed = build_circuit_state_graph(netlist, fig3, max_states=5)
        reference = build_circuit_state_graph_reference(
            netlist, fig3, max_states=5
        )
        assert packed.truncated and reference.truncated
        assert_same_composition(packed, reference)


class TestAreaEdgeCases:
    def test_empty_cover_complex_gate(self):
        gate = Gate("y", GateKind.COMPLEX, (), function=Cover([]))
        assert gate_transistors(gate) == 2  # constant pull network only

    def test_single_literal_degenerate_cube(self):
        gate = Gate(
            "y", GateKind.COMPLEX, (("a", 1),), function=Cover([Cube({"a": 1})])
        )
        assert gate_transistors(gate) == 4

    def test_area_of_netlist_with_degenerate_gates(self):
        netlist = Netlist("edge", inputs=("a",), interface_outputs=("y",))
        netlist.add_gate(
            Gate("y", GateKind.COMPLEX, (("a", 1),), function=Cover([Cube({"a": 1})]))
        )
        netlist.add_gate(Gate("z", GateKind.COMPLEX, (), function=Cover([])))
        assert area_estimate(netlist) == 4 + 2


class TestHazardEdgeCases:
    def test_degenerate_complex_gates_compose(self, toggle_sg):
        """Empty and single-literal covers survive the full hazard path."""
        netlist = Netlist("edge", inputs=("r",), interface_outputs=("q",))
        netlist.add_gate(
            Gate("q", GateKind.COMPLEX, (("r", 1),), function=Cover([Cube({"r": 1})]))
        )
        netlist.add_gate(Gate("dead", GateKind.COMPLEX, (), function=Cover([])))
        report = verify_speed_independence(netlist, toggle_sg)
        assert report.hazard_free, report.describe()

    def test_absent_signal_fails_closure_check(self):
        netlist = Netlist("edge", inputs=("r",), interface_outputs=("q",))
        netlist.add_gate(Gate("q", GateKind.AND, (("r", 1), ("ghost", 1))))
        with pytest.raises(NetlistError, match="ghost"):
            netlist.fanin_closure_check()

    def test_absent_signal_fails_hazard_verification(self, toggle_sg):
        netlist = Netlist("edge", inputs=("r",), interface_outputs=("q",))
        netlist.add_gate(Gate("q", GateKind.BUF, (("r", 1),)))
        netlist.add_gate(Gate("x", GateKind.OR, (("q", 1), ("ghost", 0))))
        with pytest.raises(NetlistError):
            verify_speed_independence(netlist, toggle_sg)
