"""Unit tests for the asterisk-notation and named-arc SG builders."""

import pytest

from repro.sg.builder import (
    parse_asterisk_state,
    sg_from_arcs,
    sg_from_asterisk_states,
)
from repro.sg.graph import InconsistentStateGraph


class TestParseAsteriskState:
    def test_plain_code(self):
        assert parse_asterisk_state("0100") == ((0, 1, 0, 0), set())

    def test_excitations(self):
        code, excited = parse_asterisk_state("1*010*")
        assert code == (1, 0, 1, 0)
        assert excited == {0, 3}

    def test_stray_star(self):
        with pytest.raises(ValueError):
            parse_asterisk_state("*01")

    def test_bad_character(self):
        with pytest.raises(ValueError):
            parse_asterisk_state("01x0")


class TestAsteriskBuilder:
    def test_toggle_cycle(self):
        sg = sg_from_asterisk_states(
            ("r", "q"), ("r",), ["0*0", "10*", "1*1", "01*"], "0*0"
        )
        assert len(sg) == 4
        assert sg.initial == "00"
        assert sg.is_excited("00", "r")

    def test_missing_target_rejected(self):
        with pytest.raises(ValueError):
            sg_from_asterisk_states(("a",), (), ["0*"], "0*")

    def test_duplicate_codes_rejected(self):
        with pytest.raises(ValueError):
            sg_from_asterisk_states(("a",), (), ["0*", "0"], "0*")

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            sg_from_asterisk_states(("a", "b"), (), ["0*"], "0*")

    def test_initial_must_be_listed(self):
        with pytest.raises(ValueError):
            sg_from_asterisk_states(
                ("r", "q", "s"), ("r",), ["0*00", "10*0", "1*10", "01*0"], "001"
            )


class TestArcBuilder:
    def test_codes_propagated(self):
        sg = sg_from_arcs(
            ("r", "q"),
            ("r",),
            (0, 0),
            [
                ("s0", "r+", "s1"),
                ("s1", "q+", "s2"),
                ("s2", "r-", "s3"),
                ("s3", "q-", "s0"),
            ],
        )
        assert sg.code("s2") == (1, 1)

    def test_reconvergence_must_agree(self):
        with pytest.raises(InconsistentStateGraph):
            sg_from_arcs(
                ("a", "b"),
                (),
                (0, 0),
                [
                    ("s0", "a+", "s1"),
                    ("s0", "b+", "s1"),
                ],
            )

    def test_event_must_be_enabled_by_code(self):
        with pytest.raises(InconsistentStateGraph):
            sg_from_arcs(
                ("a",),
                (),
                (0,),
                [("s0", "a-", "s1")],
            )

    def test_unknown_signal_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            sg_from_arcs(("a",), (), (0,), [("s0", "z+", "s1")])

    def test_dangling_states_rejected(self):
        with pytest.raises(InconsistentStateGraph):
            sg_from_arcs(
                ("a",),
                (),
                (0,),
                [("s1", "a+", "s2")],  # s1 not reachable from s0
            )

    def test_usc_violations_representable(self):
        # two distinct states with the same code (Figure 4 pattern)
        sg = sg_from_arcs(
            ("a", "b"),
            ("a",),
            (0, 0),
            [
                ("s0", "a+", "s1"),
                ("s1", "b+", "s2"),
                ("s2", "a-", "s3"),
                ("s3", "a+", "s4"),   # same code as s1? no: (1,1)
                ("s4", "b-", "s5"),   # (1,0) = code of s1
                ("s5", "a-", "s0"),
            ],
        )
        assert sg.code("s1") == sg.code("s5") == (1, 0)


class TestCycleBuilder:
    def test_toggle(self):
        from repro.sg.builder import sg_from_cycle

        sg = sg_from_cycle(("r", "q"), ("r",), ["r+", "q+", "r-", "q-"])
        assert len(sg) == 4
        assert sg.initial == "s0"
        assert sg.code("s2") == (1, 1)

    def test_empty_cycle_rejected(self):
        import pytest
        from repro.sg.builder import sg_from_cycle

        with pytest.raises(ValueError):
            sg_from_cycle(("a",), (), [])

    def test_custom_initial_code(self):
        from repro.sg.builder import sg_from_cycle

        sg = sg_from_cycle(("r", "q"), ("r",), ["r-", "q-", "r+", "q+"], (1, 1))
        assert sg.code("s0") == (1, 1)
