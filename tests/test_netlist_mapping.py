"""Tests for fanin-bounded technology mapping."""

import pytest

from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.mapping import decompose_fanin, fanin_violations
from repro.netlist.netlist import netlist_from_implementation


class TestDecomposition:
    def test_bound_respected(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        assert fanin_violations(netlist, 2)  # 3-literal cubes exist
        mapped = decompose_fanin(netlist, max_fanin=2)
        assert not fanin_violations(mapped, 2)

    def test_functionality_preserved(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        mapped = decompose_fanin(netlist, max_fanin=2)
        base = {s: 0 for s in ("a", "b", "c", "d", "x")}
        for pattern in range(4):
            values = dict(base)
            values["a"] = pattern & 1
            values["b"] = (pattern >> 1) & 1
            original = netlist.settle(dict(values))
            new = mapped.settle(dict(values))
            for name in netlist.gates:
                assert original[name] == new[name], name

    def test_interface_untouched(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        mapped = decompose_fanin(netlist, max_fanin=2)
        assert mapped.inputs == netlist.inputs
        assert mapped.interface_outputs == netlist.interface_outputs
        assert set(netlist.gates) <= set(mapped.gates)

    def test_invalid_bound_rejected(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        with pytest.raises(ValueError):
            decompose_fanin(netlist, max_fanin=1)


class TestDecompositionBreaksSI:
    """The ablation's point: naive decomposition is NOT hazard-free.

    Partial products of an MC cube are not monotonous covers; the
    internal tree nodes get excited and disabled unacknowledged.  This
    is why the paper's architecture keeps one AND gate per cube.
    """

    def test_fig3_two_input_library_is_hazardous(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        mapped = decompose_fanin(netlist, max_fanin=2)
        report = verify_speed_independence(mapped, fig3)
        assert not report.hazard_free
        # the witnesses involve internal tree nodes
        assert any("_t" in c.signal for c in report.conflicts)

    def test_fast_internal_nodes_are_safe_in_simulation(self, fig3):
        """Under the realistic relational bound (internal nodes much
        faster than the signal networks, as for Section III's
        inverters), Monte-Carlo runs stay clean."""
        from repro.netlist.simulate import simulate

        netlist = netlist_from_implementation(synthesize(fig3), "C")
        mapped = decompose_fanin(netlist, max_fanin=2)
        overrides = {
            name: (0.001, 0.01) for name in mapped.gates if "_t" in name
        }
        for seed in range(10):
            report = simulate(
                mapped,
                fig3,
                max_events=300,
                seed=seed,
                delay_overrides=overrides,
            )
            assert report.hazard_free, report.describe()

    def test_baseline_stays_hazardous(self, fig4):
        """Decomposition certainly must not *mask* existing hazards."""
        from repro.core.baseline import baseline_synthesize

        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        mapped = decompose_fanin(netlist, max_fanin=2)
        report = verify_speed_independence(mapped, fig4)
        assert not report.hazard_free
