"""Unit tests for circuit-SG composition and hazard detection.

These are the executable versions of the paper's central claims:

* Theorem 3: an MC implementation's circuit-level SG is output
  semi-modular (hazard-free) -- tested on Figures 3 and the repaired
  Figures 1 and 4;
* Example 2: the Beerel-style implementation of Figure 4 is hazardous,
  witnessed by the unacknowledged AND gate for cube c'd.
"""

import pytest

from repro.core.baseline import baseline_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.synthesis import synthesize
from repro.netlist.circuit_sg import CompositionError, build_circuit_state_graph
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation


class TestComposition:
    def test_toggle_composition(self, toggle_sg):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        composition = build_circuit_state_graph(netlist, toggle_sg)
        assert not composition.conformance_failures
        assert not composition.truncated
        # wire implementation: states = spec states (gate q == output q)
        assert len(composition.sg) == len(toggle_sg)

    def test_missing_input_rejected(self, toggle_sg, fig3):
        netlist = netlist_from_implementation(synthesize(toggle_sg), "C")
        with pytest.raises(CompositionError):
            build_circuit_state_graph(netlist, fig3)

    def test_truncation_reported(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        composition = build_circuit_state_graph(netlist, fig3, max_states=5)
        assert composition.truncated

    def test_circuit_sg_is_a_state_graph(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        composition = build_circuit_state_graph(netlist, fig3)
        composition.sg.check()
        assert set(composition.sg.inputs) == set(fig3.inputs)


class TestTheorem3:
    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_fig3_hazard_free(self, fig3, style):
        netlist = netlist_from_implementation(synthesize(fig3), style)
        report = verify_speed_independence(netlist, fig3)
        assert report.hazard_free, report.describe()

    @pytest.mark.parametrize("style", ["C", "RS"])
    def test_fig3_shared_hazard_free(self, fig3, style):
        netlist = netlist_from_implementation(
            synthesize(fig3, share_gates=True), style
        )
        report = verify_speed_independence(netlist, fig3)
        assert report.hazard_free, report.describe()

    def test_repaired_fig1_hazard_free(self, fig1):
        result = insert_state_signals(fig1, max_models=400)
        netlist = netlist_from_implementation(synthesize(result.sg), "C")
        report = verify_speed_independence(netlist, result.sg)
        assert report.hazard_free, report.describe()

    def test_repaired_fig4_hazard_free(self, fig4):
        result = insert_state_signals(fig4, max_models=400)
        netlist = netlist_from_implementation(synthesize(result.sg), "C")
        report = verify_speed_independence(netlist, result.sg)
        assert report.hazard_free, report.describe()

    def test_rs_overlaps_reported_but_benign(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "RS")
        report = verify_speed_independence(netlist, fig3)
        assert report.rs_overlaps  # transient S=R=1 states exist
        assert report.hazard_free  # ...and are held through


class TestExample2Hazard:
    def test_fig4_baseline_is_hazardous(self, fig4):
        """The paper's Example 2: t = c'd fires unacknowledged."""
        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        report = verify_speed_independence(netlist, fig4)
        assert not report.hazard_free
        # the witness involves the AND gate for cube c'd
        and_gates = [
            name
            for name, gate in netlist.gates.items()
            if gate.kind.value == "and"
            and set(gate.inputs) == {("c", 0), ("d", 1)}
        ]
        assert and_gates
        assert any(c.signal == and_gates[0] for c in report.conflicts)

    def test_describe_mentions_hazard(self, fig4):
        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        report = verify_speed_independence(netlist, fig4)
        assert "HAZARDOUS" in report.describe()


class TestRSNorAblation:
    def test_discrete_nor_pair_races(self, fig3):
        """The RS-NOR ablation: decomposing the flip-flop into two
        independently-delayed NOR gates exhibits rail races that the
        paper's atomic-latch model does not have."""
        netlist = netlist_from_implementation(synthesize(fig3), "RS-NOR")
        report = verify_speed_independence(netlist, fig3)
        assert not report.hazard_free


class TestWitnessTraces:
    def test_trace_replays_to_the_conflict(self, fig4):
        """The witness trace must be a legal firing sequence of the
        composed state graph ending at the conflict state."""
        netlist = netlist_from_implementation(baseline_synthesize(fig4), "C")
        report = verify_speed_independence(netlist, fig4)
        conflict = report.conflicts[0]
        trace = report.witness_trace(conflict)
        assert trace[-1] == conflict.by
        state = report.circuit_sg.initial
        for event in trace[:-1]:
            targets = report.circuit_sg.fire(state, event)
            assert targets, f"{event} not enabled on the witness path"
            state = targets[0]
        assert state == conflict.state
        # and the disabling event itself is enabled there
        assert report.circuit_sg.fire(state, conflict.by)

    def test_no_trace_for_clean_circuit(self, fig3):
        netlist = netlist_from_implementation(synthesize(fig3), "C")
        report = verify_speed_independence(netlist, fig3)
        assert report.witness_trace() == []
