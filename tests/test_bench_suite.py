"""Tests for the Table-1 benchmark suite and the pipeline driver."""

import pytest

from repro.bench.suite import (
    BENCHMARKS,
    format_table1,
    load_benchmark,
    paper_row,
    run_pipeline,
    run_table1,
)
from repro.sg.properties import is_output_semi_modular
from repro.stg.reachability import stg_to_state_graph


class TestRegistry:
    def test_nine_designs(self):
        assert len(BENCHMARKS) == 9

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_benchmark("nonexistent")

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_interface_sizes_match_table1(self, name):
        stg = load_benchmark(name)
        inputs, outputs, _ = paper_row(name)
        assert len(stg.inputs) == inputs, name
        assert len(stg.non_inputs) == outputs, name

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_designs_elaborate_cleanly(self, name):
        sg = stg_to_state_graph(load_benchmark(name))
        sg.check()
        assert is_output_semi_modular(sg), name


class TestPipeline:
    @pytest.mark.parametrize("name", ["delement", "luciano", "berkel2"])
    def test_added_signal_counts(self, name):
        result = run_pipeline(name, verify=False)
        assert result.added_signals == paper_row(name)[2], name

    def test_mp_forward_pkt_needs_nothing(self):
        result = run_pipeline("mp-forward-pkt", verify=False)
        assert result.added_signals == 0
        assert result.insertion.sg is result.spec_sg

    def test_pipeline_row(self):
        result = run_pipeline("delement", verify=False)
        assert result.row == ("delement", 2, 2, 1)

    def test_verification_included(self):
        result = run_pipeline("delement", verify=True, style="RS")
        assert result.hazard_report is not None
        assert result.hazard_report.hazard_free


class TestFormatting:
    def test_table_format(self):
        results = run_table1(verify=False, names=["delement", "luciano"])
        table = format_table1(results)
        assert "delement" in table
        assert "luciano" in table
        assert "paper" in table.splitlines()[0]
