"""The tutorial's code blocks must actually run.

Extracts every fenced ``python`` block from docs/TUTORIAL.md and
executes them sequentially in one namespace (they build on each other),
so documentation rot fails the suite.
"""

import os
import re

import pytest

TUTORIAL = os.path.join(
    os.path.dirname(__file__), "..", "docs", "TUTORIAL.md"
)


def python_blocks():
    text = open(TUTORIAL).read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_has_snippets():
    assert len(python_blocks()) >= 8


def test_tutorial_snippets_execute():
    namespace = {}
    for index, block in enumerate(python_blocks()):
        try:
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic path
            pytest.fail(
                f"tutorial block {index} failed: {type(error).__name__}: "
                f"{error}\n---\n{block}"
            )
    # spot-check that the narrative reached its conclusions
    assert namespace["report"].hazard_free is not None
