"""The synthesis service: protocol, budgets, job engine, HTTP server.

Each server under test runs in-process: a background thread owns the
asyncio loop, the test talks real HTTP over a loopback socket, and the
graceful-shutdown path tears everything down.  This exercises the whole
stack -- request parsing, routing, the job queue, token buckets, the
thread/process executors and event streaming -- without subprocesses.
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro.cli import main
from repro.service import JobManager, ServiceServer
from repro.service.jobs import Job, TokenBucket
from repro.service.protocol import ProtocolError, parse_submit

pytestmark = pytest.mark.smoke

DATA = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "bench", "data",
)

with open(os.path.join(DATA, "delement.g"), encoding="utf-8") as _handle:
    DELEMENT = _handle.read()

TERMINAL = ("done", "failed", "inconclusive")


# ----------------------------------------------------------------------
# In-process server harness
# ----------------------------------------------------------------------
class ServiceUnderTest:
    """One server on a loopback socket, loop on a background thread."""

    def __init__(self, **manager_kwargs):
        self._kwargs = manager_kwargs
        self._ready = threading.Event()
        self._error = None
        self.manager = None
        self.port = None
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30) or self._error:
            raise RuntimeError(f"server failed to start: {self._error!r}")

    def _thread_main(self):
        import asyncio

        async def _amain():
            try:
                self.manager = JobManager(**self._kwargs)
                server = ServiceServer(self.manager, host="127.0.0.1", port=0)
                await server.start()
                self.port = server.port
            except Exception as exc:  # surface startup failures to the test
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await server.serve_until_shutdown()
            # let the /v1/shutdown handler flush its response
            await asyncio.sleep(0.05)

        asyncio.run(_amain())

    # -- HTTP client ---------------------------------------------------
    def request(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            if isinstance(body, dict):
                body = json.dumps(body)
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def stream_lines(self, path):
        """GET an event stream, return its decoded lines after close."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.read().decode("utf-8").splitlines()
        finally:
            conn.close()

    def submit(self, document, headers=None):
        status, doc = self.request("POST", "/v1/jobs", document, headers)
        assert status == 202, (status, doc)
        return doc["id"]

    def wait(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["status"] in TERMINAL:
                return doc
            time.sleep(0.01)
        raise AssertionError(f"job {job_id} did not finish in {timeout}s")

    def result(self, job_id):
        status, doc = self.request("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200, (status, doc)
        return doc

    def shutdown(self):
        status, report = self.request("POST", "/v1/shutdown")
        assert status == 200
        self._thread.join(timeout=30)
        assert not self._thread.is_alive()
        return report


@pytest.fixture()
def service():
    """A default thread-mode server (no store, fresh memo)."""
    handle = ServiceUnderTest()
    yield handle
    if handle._thread.is_alive():
        handle.shutdown()


# ----------------------------------------------------------------------
# TokenBucket semantics (deterministic via a fake clock)
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        now = [0.0]
        bucket = TokenBucket(100, 10, clock=lambda: now[0])
        assert bucket.available() == 100
        bucket.drain(60)
        assert bucket.available() == 40

    def test_refills_at_rate_up_to_capacity(self):
        now = [0.0]
        bucket = TokenBucket(100, 10, clock=lambda: now[0])
        bucket.drain(100)
        now[0] = 3.0
        assert bucket.available() == pytest.approx(30)
        now[0] = 1000.0
        assert bucket.available() == 100  # capped at capacity

    def test_overdraft_is_a_debt_repaid_by_refill(self):
        now = [0.0]
        bucket = TokenBucket(50, 10, clock=lambda: now[0])
        bucket.drain(80)  # a job overshot its snapshot
        assert bucket.available() == -30
        now[0] = 4.0
        assert bucket.available() == pytest.approx(10)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 10)
        with pytest.raises(ValueError):
            TokenBucket(10, -1)


# ----------------------------------------------------------------------
# Submit-body validation (HTTP 400 surface)
# ----------------------------------------------------------------------
class TestParseSubmit:
    def test_minimal_synth_body_gets_defaults(self):
        kind, tenant, params = parse_submit(
            json.dumps({"kind": "synth", "spec": DELEMENT}).encode()
        )
        assert (kind, tenant) == ("synth", "default")
        assert params["style"] == "C"
        assert params["max_states"] == 200_000
        assert params["verify"] is True

    def test_verify_kind_forces_model_checking(self):
        _, _, params = parse_submit(
            json.dumps(
                {
                    "kind": "verify",
                    "spec": DELEMENT,
                    "options": {"verify": False},
                }
            ).encode()
        )
        assert params["verify"] is True

    def test_tenant_header_default_and_body_override(self):
        _, tenant, _ = parse_submit(
            json.dumps({"kind": "synth", "spec": DELEMENT}).encode(),
            default_tenant="team-a",
        )
        assert tenant == "team-a"
        _, tenant, _ = parse_submit(
            json.dumps(
                {"kind": "synth", "spec": DELEMENT, "tenant": "team-b"}
            ).encode(),
            default_tenant="team-a",
        )
        assert tenant == "team-b"

    @pytest.mark.parametrize(
        "body",
        [
            b"{not json",
            b"[1, 2]",
            json.dumps({"kind": "zap"}).encode(),
            json.dumps({"kind": "synth"}).encode(),  # missing spec
            json.dumps({"kind": "synth", "spec": "  "}).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x", "bogus": 1}
            ).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x", "options": {"zap": 1}}
            ).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x", "options": {"style": "NAND"}}
            ).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x", "options": {"max_states": 0}}
            ).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x",
                 "options": {"max_states": True}}
            ).encode(),
            json.dumps(
                {"kind": "synth", "spec": "x",
                 "options": {"backend": "quantum"}}
            ).encode(),
            json.dumps({"kind": "synth", "spec": "x", "tenant": ""}).encode(),
            json.dumps(
                {"kind": "table1", "options": {"designs": ["no-such"]}}
            ).encode(),
            json.dumps(
                {"kind": "table1", "options": {"designs": []}}
            ).encode(),
            json.dumps({"kind": "diff", "options": {"count": 10**6}}).encode(),
        ],
    )
    def test_malformed_bodies_are_rejected(self, body):
        with pytest.raises(ProtocolError):
            parse_submit(body)


# ----------------------------------------------------------------------
# Job lifecycle over real HTTP (thread mode)
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_synth_job_runs_to_done(self, service):
        status, doc = service.request(
            "POST",
            "/v1/jobs",
            {"kind": "synth", "spec": DELEMENT, "name": "delement"},
        )
        assert status == 202
        assert doc["schema"] == "repro-service-job/1"
        assert doc["status"] == "queued"
        assert doc["kind"] == "synth" and doc["name"] == "delement"

        done = service.wait(doc["id"])
        assert done["status"] == "done"
        assert done["charged_states"] > 0
        assert done["seconds"] is not None
        assert done["result_ready"] is True

        result = service.result(doc["id"])
        payload = result["result"]
        assert payload["schema"] == "repro-service-synth/1"
        assert payload["hazard"]["hazard_free"] is True
        assert payload["netlist"]["gates"]
        assert payload["equations"]

    def test_verify_job_reports_verdict(self, service):
        job_id = service.submit({"kind": "verify", "spec": DELEMENT})
        assert service.wait(job_id)["status"] == "done"
        payload = service.result(job_id)["result"]
        assert payload["schema"] == "repro-service-verify/1"
        assert payload["verdict"] == "hazard-free"
        assert payload["exit_code"] == 0

    def test_bad_specification_fails_cleanly(self, service):
        job_id = service.submit(
            {"kind": "synth", "spec": ".model empty\n.inputs a\n.end\n"}
        )
        doc = service.wait(job_id)
        assert doc["status"] == "failed"
        assert doc["detail"]
        status, _ = service.request("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200  # failed is terminal: result doc served

    def test_tiny_state_budget_is_inconclusive(self, service):
        job_id = service.submit(
            {
                "kind": "synth",
                "spec": DELEMENT,
                "options": {"max_states": 5},
            }
        )
        doc = service.wait(job_id)
        assert doc["status"] == "inconclusive"

    def test_event_stream_covers_every_stage(self, service):
        job_id = service.submit({"kind": "synth", "spec": DELEMENT})
        service.wait(job_id)
        events = [
            json.loads(line)
            for line in service.stream_lines(f"/v1/jobs/{job_id}/events")
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "status" and kinds[-1] == "status"
        assert events[-1]["status"] == "done"
        stages = [e["stage"] for e in events if e["event"] == "stage"]
        assert stages == ["reach", "regions", "mc", "covers", "netlist"]
        assert any(e["event"] == "phase" for e in events)

    def test_event_stream_sse_framing(self, service):
        job_id = service.submit({"kind": "synth", "spec": DELEMENT})
        service.wait(job_id)
        lines = service.stream_lines(f"/v1/jobs/{job_id}/events?format=sse")
        assert any(line.startswith("event: status") for line in lines)
        assert any(line.startswith("data: {") for line in lines)

    def test_result_before_terminal_is_conflict(self, service):
        # white-box: park a queued job that no worker will ever claim
        job = Job(id="j-parked", kind="synth", tenant="t", params={})
        service.manager._jobs[job.id] = job
        status, doc = service.request("GET", "/v1/jobs/j-parked/result")
        assert status == 409
        assert "not ready" in doc["error"]

    def test_unknown_job_and_path_are_404(self, service):
        assert service.request("GET", "/v1/jobs/j999999")[0] == 404
        assert service.request("GET", "/v1/nope")[0] == 404

    def test_wrong_method_is_405(self, service):
        assert service.request("PUT", "/v1/jobs")[0] == 405
        assert service.request("POST", "/healthz")[0] == 405

    def test_malformed_body_is_400_over_http(self, service):
        status, doc = service.request("POST", "/v1/jobs", "{not json")
        assert status == 400 and "error" in doc
        status, doc = service.request("POST", "/v1/jobs", {"kind": "zap"})
        assert status == 400

    def test_healthz_and_job_listing(self, service):
        status, doc = service.request("GET", "/healthz")
        assert status == 200 and doc["status"] == "ok"
        job_id = service.submit({"kind": "synth", "spec": DELEMENT})
        service.wait(job_id)
        status, doc = service.request("GET", "/v1/jobs")
        assert status == 200
        assert job_id in [job["id"] for job in doc["jobs"]]


# ----------------------------------------------------------------------
# The resident cache: concurrent submissions share one warm world
# ----------------------------------------------------------------------
class TestWarmSharing:
    def test_repeat_submission_hits_shared_memo(self, service):
        first = service.submit({"kind": "synth", "spec": DELEMENT})
        second = service.submit({"kind": "synth", "spec": DELEMENT})
        cold = service.wait(first)
        warm = service.wait(second)
        assert cold["cache"]["misses"] > 0
        assert warm["cache"]["hits"] > 0
        assert warm["cache"]["misses"] == 0
        # both jobs produced the identical artifact
        assert (
            service.result(first)["result"]
            == service.result(second)["result"]
        )

    def test_stats_expose_the_resident_world(self, service):
        job_id = service.submit({"kind": "synth", "spec": DELEMENT})
        service.wait(job_id)
        status, stats = service.request("GET", "/v1/stats")
        assert status == 200
        assert stats["schema"] == "repro-service-stats/1"
        assert stats["mode"] == "thread" and stats["workers"] == 1
        assert stats["memo_entries"] > 0
        assert stats["cache"]["misses"] > 0
        assert stats["jobs"]["done"] == 1

    def test_process_mode_shares_warmth_through_store(self, tmp_path):
        handle = ServiceUnderTest(store=str(tmp_path / "store"), workers=2)
        try:
            ids = [
                handle.submit({"kind": "synth", "spec": DELEMENT})
                for _ in range(3)
            ]
            docs = [handle.wait(job_id) for job_id in ids]
            assert all(doc["status"] == "done" for doc in docs)
            # later jobs read artifacts an earlier worker persisted
            assert any(doc["cache"].get("store_hit", 0) > 0 for doc in docs)
            results = [handle.result(job_id)["result"] for job_id in ids]
            assert results[0] == results[1] == results[2]
        finally:
            report = handle.shutdown()
        assert report["pending"] == 0


# ----------------------------------------------------------------------
# Serving over a sharded store root
# ----------------------------------------------------------------------
class TestShardedService:
    def test_thread_mode_over_sharded_store(self, tmp_path):
        handle = ServiceUnderTest(store=str(tmp_path / "store"), shards=2)
        try:
            first = handle.wait(
                handle.submit({"kind": "synth", "spec": DELEMENT})
            )
            assert first["status"] == "done"
            status, stats = handle.request("GET", "/v1/stats")
            assert status == 200
            assert stats["store"]["shards"] == 2
            by_shard = stats["store"]["traffic_by_shard"]
            assert sorted(by_shard) == ["shard-00", "shard-01"]
            assert sum(t["put"] for t in by_shard.values()) >= 1
        finally:
            handle.shutdown()
        assert os.path.isdir(tmp_path / "store" / "shard-01")

    def test_process_mode_shares_warmth_through_shards(self, tmp_path):
        handle = ServiceUnderTest(
            store=str(tmp_path / "store"), shards=2, workers=2
        )
        try:
            ids = [
                handle.submit({"kind": "synth", "spec": DELEMENT})
                for _ in range(3)
            ]
            docs = [handle.wait(job_id) for job_id in ids]
            assert all(doc["status"] == "done" for doc in docs)
            assert any(doc["cache"].get("store_hit", 0) > 0 for doc in docs)
        finally:
            handle.shutdown()

    def test_sharded_layout_autodetected_without_flag(self, tmp_path):
        root = str(tmp_path / "store")
        from repro.pipeline.shard import ShardedStore

        ShardedStore(root, shards=3)  # as a batch --shards sweep leaves it
        handle = ServiceUnderTest(store=root)
        try:
            assert handle.manager.store.shards == 3
            doc = handle.wait(
                handle.submit({"kind": "synth", "spec": DELEMENT})
            )
            assert doc["status"] == "done"
        finally:
            handle.shutdown()

    def test_shards_without_store_rejected(self):
        with pytest.raises(ValueError, match="store root"):
            JobManager(shards=2)
        with pytest.raises(ValueError, match="store root"):
            JobManager(remote_store="/tmp/nope")


# ----------------------------------------------------------------------
# Tenant token buckets -> the inconclusive verdict
# ----------------------------------------------------------------------
class TestTenantBudget:
    def test_exhaustion_is_inconclusive_and_per_tenant(self):
        # capacity 40 with no refill: delement charges ~35 state tokens,
        # so the first job nearly drains the bucket.  Later jobs must use
        # *different* designs -- a repeat of delement is served from the
        # shared memo and cached work charges nothing.
        with open(os.path.join(DATA, "nak-pa.g"), encoding="utf-8") as fh:
            nak_pa = fh.read()
        with open(
            os.path.join(DATA, "mp-forward-pkt.g"), encoding="utf-8"
        ) as fh:
            forward = fh.read()
        handle = ServiceUnderTest(tenant_tokens=40, tenant_refill=0.0)
        try:
            first = handle.submit({"kind": "synth", "spec": DELEMENT})
            assert handle.wait(first)["status"] == "done"

            # cached repeats stay free: the same spec again still succeeds
            again = handle.submit({"kind": "synth", "spec": DELEMENT})
            assert handle.wait(again)["status"] == "done"

            # fresh work only has ~5 tokens left: budget trips mid-run
            second = handle.submit({"kind": "synth", "spec": nak_pa})
            starved = handle.wait(second)
            assert starved["status"] == "inconclusive"
            assert starved["detail"]

            # an empty bucket never even starts the job
            handle.manager.bucket("default").drain(40)
            third = handle.submit({"kind": "synth", "spec": forward})
            empty = handle.wait(third)
            assert empty["status"] == "inconclusive"
            assert "budget exhausted" in empty["detail"]

            # a different tenant has its own untouched bucket
            other = handle.submit(
                {"kind": "synth", "spec": DELEMENT},
                headers={"X-Tenant": "team-b"},
            )
            assert handle.wait(other)["status"] == "done"

            _, stats = handle.request("GET", "/v1/stats")
            assert set(stats["tenants"]) == {"default", "team-b"}
            assert stats["tenants"]["default"] < 1.0
        finally:
            handle.shutdown()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_drain_finishes_in_flight_jobs(self):
        handle = ServiceUnderTest()
        ids = [
            handle.submit({"kind": "synth", "spec": DELEMENT})
            for _ in range(3)
        ]
        report = handle.shutdown()
        assert report["drained"] is True
        assert report["pending"] == 0 and report["pending_ids"] == []
        assert report["jobs"] == {"done": 3}
        assert len(ids) == 3
        # the listener is gone: new connections are refused
        with pytest.raises(OSError):
            handle.request("GET", "/healthz")

    def test_submissions_after_drain_are_rejected(self):
        handle = ServiceUnderTest()
        import asyncio

        asyncio.run_coroutine_threadsafe(
            _set_draining(handle.manager), _manager_loop(handle.manager)
        ).result(timeout=10)
        status, doc = handle.request(
            "POST", "/v1/jobs", {"kind": "synth", "spec": DELEMENT}
        )
        assert status == 503
        assert "draining" in doc["error"]
        handle.shutdown()


async def _set_draining(manager):
    manager._draining = True


def _manager_loop(manager):
    return manager._loop


# ----------------------------------------------------------------------
# CLI --store validation (exit 2, no mid-run traceback)
# ----------------------------------------------------------------------
class TestStoreValidation:
    def test_batch_rejects_file_store_path(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        code = main(
            [
                "batch",
                os.path.join(DATA, "delement.g"),
                "--store",
                str(bogus),
            ]
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_serve_rejects_file_store_path(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        code = main(["serve", "--store", str(bogus)])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_serve_rejects_unwritable_store(self, tmp_path, capsys):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o500)
        try:
            code = main(["serve", "--store", str(locked / "store")])
        finally:
            locked.chmod(0o700)
        assert code == 2
        assert "store" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Bounded residency: the memo LRU and the finished-job retention window
# ----------------------------------------------------------------------
class TestLRUMemo:
    def test_evicts_least_recently_used(self):
        from repro.service.jobs import LRUMemo

        memo = LRUMemo(max_entries=2)
        memo["a"] = 1
        memo["b"] = 2
        assert memo["a"] == 1  # refresh 'a': 'b' is now the oldest
        memo["c"] = 3
        assert set(memo) == {"a", "c"}

    def test_rejects_non_positive_capacity(self):
        from repro.service.jobs import LRUMemo

        with pytest.raises(ValueError, match="max_entries"):
            LRUMemo(0)


class TestJobRetention:
    def test_oldest_terminal_jobs_are_pruned(self):
        manager = JobManager(keep_jobs=2)
        statuses = ["done", "failed", "running", "done", "queued", "done"]
        for n, status in enumerate(statuses):
            job = Job(id=f"j{n}", kind="synth", tenant="t", params={})
            job.status = status
            manager._jobs[job.id] = job
        manager._prune_jobs()
        # 4 terminal jobs -> the 2 oldest go; live jobs are untouchable
        assert sorted(manager._jobs) == ["j2", "j3", "j4", "j5"]

    def test_retention_must_keep_at_least_one(self):
        with pytest.raises(ValueError, match="keep_jobs"):
            JobManager(keep_jobs=0)


# ----------------------------------------------------------------------
# Shutdown is serialized: concurrent callers share one drain
# ----------------------------------------------------------------------
class TestShutdownRace:
    def test_concurrent_shutdowns_drain_once(self):
        import asyncio

        async def _main():
            manager = JobManager()
            server = ServiceServer(manager, port=0)
            await server.start()
            calls = []
            real_drain = manager.drain

            async def counting_drain():
                calls.append(1)
                return await real_drain()

            manager.drain = counting_drain
            reports = await asyncio.gather(
                server.shutdown(), server.shutdown()
            )
            assert calls == [1]
            assert reports[0] is reports[1]

        asyncio.run(_main())


# ----------------------------------------------------------------------
# Oversized request/header lines are client errors, not 500s
# ----------------------------------------------------------------------
class TestOversizedLines:
    def test_oversized_request_line_is_400(self, service):
        status, doc = service.request("GET", "/" + "x" * (80 * 1024))
        assert status == 400
        assert "too long" in doc["error"]

    def test_oversized_header_line_is_400(self, service):
        status, doc = service.request(
            "GET", "/healthz", headers={"X-Pad": "x" * (80 * 1024)}
        )
        assert status == 400
        assert "too long" in doc["error"]


# ----------------------------------------------------------------------
# Internal bugs are labeled as such, with the traceback preserved
# ----------------------------------------------------------------------
class TestInternalErrors:
    def test_internal_bug_is_labeled_and_traced(self, monkeypatch, capsys):
        from repro.pipeline.context import AnalysisContext
        from repro.service import jobs as jobs_mod

        def boom(params, context, emit):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(jobs_mod._RUNNERS, "synth", boom)
        outcome = jobs_mod.run_job(
            "synth", {}, AnalysisContext(), lambda event: None
        )
        assert outcome["status"] == "failed"
        assert outcome["detail"] == "internal error: RuntimeError: kaboom"
        assert "kaboom" in capsys.readouterr().err


# ----------------------------------------------------------------------
# HTTP keep-alive: persistent connections, opt-out, HTTP/1.0
# ----------------------------------------------------------------------
class TestKeepAlive:
    def test_requests_reuse_one_socket(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "keep-alive"
            response.read()
            sock = conn.sock
            assert sock is not None
            for path in ("/v1/stats", "/v1/jobs", "/healthz"):
                conn.request("GET", path)
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "keep-alive"
                response.read()
                assert conn.sock is sock  # same socket, no reconnect
        finally:
            conn.close()

    def test_connection_close_honoured(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
        try:
            conn.request("GET", "/healthz", headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
            response.read()
            # http.client drops the socket once the server closes
            assert conn.sock is None
        finally:
            conn.close()

    def test_http_10_defaults_to_close(self, service):
        import socket

        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=60
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            payload = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break  # server closed: HTTP/1.0 is one-shot
                payload += chunk
        head = payload.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
        assert "connection: close" in head

    def test_errors_on_kept_connection_do_not_kill_it(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
        try:
            conn.request("GET", "/no/such/path")
            response = conn.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "keep-alive"
            response.read()
            sock = conn.sock
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            assert conn.sock is sock
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Corpus sweep jobs
# ----------------------------------------------------------------------
CORPUS_DOC = {
    "schema": "repro-corpus-spec/1",
    "count": 3,
    "seed": 5,
    "name_prefix": "svc",
    "families": [
        {"family": "token_ring", "params": {"channels": [2, 3]}},
        {"family": "linear_pipeline", "params": {"stages": [2, 3]}},
    ],
}


class TestCorpusJobs:
    def test_parse_submit_defaults(self):
        kind, _, params = parse_submit(
            json.dumps({"kind": "corpus", "corpus": CORPUS_DOC}).encode()
        )
        assert kind == "corpus"
        assert params["corpus"]["count"] == 3
        assert params["corpus"]["seed"] == 5
        assert params["max_states"] == 20_000
        assert params["jobs"] is None

    def test_seed_option_overrides_spec(self):
        _, _, params = parse_submit(
            json.dumps(
                {
                    "kind": "corpus",
                    "corpus": CORPUS_DOC,
                    "options": {"seed": 99},
                }
            ).encode()
        )
        assert params["corpus"]["seed"] == 99

    @pytest.mark.parametrize(
        "body",
        [
            json.dumps({"kind": "corpus"}).encode(),  # no corpus doc
            json.dumps({"kind": "corpus", "corpus": 7}).encode(),
            json.dumps(
                {"kind": "corpus", "corpus": {"schema": "repro-corpus-spec/1"}}
            ).encode(),  # missing count
            json.dumps(
                {"kind": "corpus", "corpus": CORPUS_DOC, "spec": "x"}
            ).encode(),  # spec is for file-backed kinds
            json.dumps(
                {"kind": "synth", "spec": "x", "corpus": CORPUS_DOC}
            ).encode(),  # corpus doc on a non-corpus kind
            json.dumps(
                {"kind": "corpus", "corpus": dict(CORPUS_DOC, count=10**6)}
            ).encode(),  # above MAX_CORPUS_COUNT
            json.dumps(
                {"kind": "corpus", "corpus": CORPUS_DOC,
                 "options": {"seed": -1}}
            ).encode(),
            json.dumps(
                {"kind": "corpus", "corpus": CORPUS_DOC,
                 "options": {"style": "NAND"}}
            ).encode(),
        ],
    )
    def test_malformed_corpus_submissions_rejected(self, body):
        with pytest.raises(ProtocolError):
            parse_submit(body)

    def test_corpus_job_runs_to_done(self, service):
        job_id = service.submit({"kind": "corpus", "corpus": CORPUS_DOC})
        doc = service.wait(job_id)
        assert doc["status"] == "done", doc
        result = service.result(job_id)["result"]
        assert result["schema"] == "repro-service-corpus/1"
        assert result["seed"] == 5
        assert result["designs"] == 3
        assert result["statuses"] == {"hazard-free": 3}
        manifest = result["manifest"]
        assert len(manifest["designs"]) == 3
        for entry in manifest["designs"]:
            assert entry["spec"].startswith("corpus:svc-")

    def test_corpus_job_streams_design_events(self, service):
        job_id = service.submit({"kind": "corpus", "corpus": CORPUS_DOC})
        service.wait(job_id)
        lines = service.stream_lines(f"/v1/jobs/{job_id}/events")
        events = [json.loads(line) for line in lines if line.strip()]
        designs = [e["design"] for e in events if e.get("event") == "design"]
        assert len(designs) == 3
