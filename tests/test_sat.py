"""Unit tests for the CNF builder and DPLL solver."""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, solve


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = (None,) + bits
        if all(
            any(
                assignment[abs(l)] == (l > 0)
                for l in clause
            )
            for clause in clauses
        ):
            return True
    return False


class TestCNF:
    def test_named_variables_are_stable(self):
        cnf = CNF()
        v1 = cnf.var("a")
        v2 = cnf.var("a")
        assert v1 == v2
        assert cnf.name_of(v1) == "a"

    def test_duplicate_explicit_name_rejected(self):
        cnf = CNF()
        cnf.new_var("a")
        with pytest.raises(ValueError):
            cnf.new_var("a")

    def test_clause_literal_range_checked(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add(2)
        with pytest.raises(ValueError):
            cnf.add(0)

    def test_empty_clause_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([])

    def test_exactly_one(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(3)]
        cnf.exactly_one(vs)
        model = solve(cnf)
        assert model is not None
        assert sum(model[v] for v in vs) == 1

    def test_at_most_k_bounds(self):
        for k in (0, 1, 2, 3):
            cnf = CNF()
            vs = [cnf.new_var() for _ in range(5)]
            cnf.at_most_k(vs, k)
            # force k+1 variables true -> UNSAT
            if k < 5:
                for v in vs[: k + 1]:
                    cnf.add(v)
                assert solve(cnf) is None

    def test_at_most_k_allows_k(self):
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(5)]
        cnf.at_most_k(vs, 2)
        for v in vs[:2]:
            cnf.add(v)
        model = solve(cnf)
        assert model is not None
        assert sum(model[v] for v in vs) == 2

    def test_decode(self):
        cnf = CNF()
        a = cnf.var("a")
        cnf.add(a)
        model = solve(cnf)
        assert cnf.decode(model)["a"] is True

    def test_implication_and_iff(self):
        cnf = CNF()
        a, b = cnf.var("a"), cnf.var("b")
        cnf.add_implies(a, b)
        cnf.add(a)
        model = solve(cnf)
        assert model[b]
        cnf2 = CNF()
        a2, b2 = cnf2.var("a"), cnf2.var("b")
        cnf2.add_iff(a2, b2)
        cnf2.add(-a2)
        model2 = solve(cnf2)
        assert not model2[b2]


class TestSolver:
    def test_trivial_sat(self):
        assert Solver(1, [(1,)]).solve() is not None

    def test_trivial_unsat(self):
        assert Solver(1, [(1,), (-1,)]).solve() is None

    def test_unit_propagation_chain(self):
        clauses = [(1,), (-1, 2), (-2, 3), (-3, 4)]
        model = Solver(4, clauses).solve()
        assert model[1] and model[2] and model[3] and model[4]

    def test_requires_backtracking(self):
        # (a|b) & (a|-b) & (-a|c) & (-a|-c) forces a then contradiction -> a False?
        # -a|c and -a|-c force a False; then a|b, a|-b force b and -b -> UNSAT
        clauses = [(1, 2), (1, -2), (-1, 3), (-1, -3)]
        assert Solver(3, clauses).solve() is None

    def test_pigeonhole_3_into_2_unsat(self):
        # p_ij: pigeon i in hole j, i in 0..2, j in 0..1
        def var(i, j):
            return i * 2 + j + 1

        clauses = []
        for i in range(3):
            clauses.append((var(i, 0), var(i, 1)))
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append((-var(i1, j), -var(i2, j)))
        assert Solver(6, clauses).solve() is None

    def test_assumptions(self):
        solver = Solver(2, [(1, 2)])
        model = solver.solve(assumptions=[-1])
        assert model is not None and model[2]

    def test_contradictory_assumptions(self):
        solver = Solver(1, [(1, -1)])
        assert solver.solve(assumptions=[1, -1]) is None

    def test_tautological_clause_skipped(self):
        model = Solver(2, [(1, -1), (2,)]).solve()
        assert model[2]

    def test_agrees_with_brute_force_on_random_instances(self):
        import random

        rng = random.Random(12345)
        for trial in range(60):
            num_vars = rng.randint(3, 7)
            num_clauses = rng.randint(3, 18)
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, 3)
                clause = tuple(
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(width)
                )
                clauses.append(clause)
            expected = brute_force_sat(num_vars, clauses)
            solver = Solver(num_vars, clauses)
            model = solver.solve()
            assert (model is not None) == expected, (num_vars, clauses)
            if model is not None:
                assignment = [None] + [bool(v) for v in model[1:]]
                for clause in clauses:
                    assert any(assignment[abs(l)] == (l > 0) for l in clause)
