"""CI smoke test: a real ``repro-si serve`` process vs the CLI, bytewise.

Boots the service as a **subprocess** (the exact artifact CI ships:
``python -m repro.cli serve``), drives it over real HTTP, and asserts
that what the service returns is *the same bytes* the one-shot CLI
produces for the same inputs:

* ``synth``: the service's ``netlist`` payload against the file
  ``repro-si synth --save-netlist`` writes, canonical JSON to canonical
  JSON (the payload reuses :func:`repro.netlist.io.netlist_to_json`,
  so any drift is a wire-protocol bug);
* ``verify``: the service verdict/exit code against the CLI process's
  actual exit code for clean, hazardous-truncated and budget cases;
* ``table1``: the service rows against ``repro-si table1 --json`` rows,
  volatile keys (``elapsed_seconds``, ``profile``, ``reuse``) stripped
  from both;
* ``corpus``: the service's corpus-sweep manifest against the one
  ``repro-si batch --corpus`` writes for the same spec + seed,
  canonical JSON to canonical JSON;
* keep-alive: several requests pumped through one
  ``http.client.HTTPConnection`` must reuse the same socket (asserted
  by identity), and a ``Connection: close`` request must end it.

Finally the smoke POSTs ``/v1/shutdown`` and fails unless the drain
reports zero pending jobs **and** the server process exits 0 -- the
non-clean-shutdown failure mode this script exists to catch.

Both processes run under ``PYTHONHASHSEED=0`` so iteration order can
never masquerade as nondeterminism.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DATA = os.path.join(_REPO_ROOT, "src", "repro", "bench", "data")

#: designs exercised bytewise (one clean, one needing state insertion)
SYNTH_DESIGNS = ("mp-forward-pkt", "delement")
#: fast Table-1 subset for the rows comparison
TABLE1_DESIGNS = ("delement", "nak-pa", "mp-forward-pkt")

_ENV = {
    **os.environ,
    "PYTHONPATH": os.path.join(_REPO_ROOT, "src"),
    "PYTHONHASHSEED": "0",
}


def canonical(document) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


class Server:
    """One ``repro-si serve`` subprocess on an ephemeral port."""

    def __init__(self, scratch: str):
        port_file = os.path.join(scratch, "port")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--store", os.path.join(scratch, "store"),
                "--port-file", port_file,
            ],
            env=_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30
        while not os.path.exists(port_file):
            if self.proc.poll() is not None:
                raise SmokeFailure(
                    f"server died on startup:\n{self.proc.stdout.read()}"
                )
            check(time.monotonic() < deadline, "server never published a port")
            time.sleep(0.05)
        with open(port_file, encoding="utf-8") as handle:
            self.port = int(handle.read())

    def request(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=300)
        try:
            if isinstance(body, dict):
                body = json.dumps(body)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def run_job(self, document: dict) -> dict:
        status, doc = self.request("POST", "/v1/jobs", document)
        check(status == 202, f"submit rejected: {status} {doc}")
        job_id = doc["id"]
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            status, doc = self.request("GET", f"/v1/jobs/{job_id}")
            if doc["status"] in ("done", "failed", "inconclusive"):
                break
            time.sleep(0.02)
        status, result = self.request("GET", f"/v1/jobs/{job_id}/result")
        check(status == 200, f"result not served: {status} {result}")
        return result


def cli(args, expect_codes=(0,)) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_ENV, capture_output=True, text=True, timeout=300,
    )
    check(
        proc.returncode in expect_codes,
        f"repro-si {' '.join(args)} exited {proc.returncode}:\n{proc.stderr}",
    )
    return proc


def strip_volatile(row: dict) -> dict:
    # ``reuse`` records cache placement (hit vs miss), which depends on
    # what the resident server ran earlier -- the CLI process is always
    # cold, so it is as volatile as the timings.
    return {
        key: value
        for key, value in row.items()
        if key not in ("elapsed_seconds", "profile", "reuse")
    }


def smoke_synth(server: Server, scratch: str) -> None:
    for design in SYNTH_DESIGNS:
        spec_path = os.path.join(_DATA, f"{design}.g")
        with open(spec_path, encoding="utf-8") as handle:
            spec_text = handle.read()
        result = server.run_job(
            {"kind": "synth", "spec": spec_text, "name": design}
        )
        check(
            result["status"] == "done",
            f"synth {design}: {result['status']} ({result['detail']})",
        )

        netlist_path = os.path.join(scratch, f"{design}.netlist.json")
        cli(["synth", spec_path, "--save-netlist", netlist_path])
        with open(netlist_path, encoding="utf-8") as handle:
            cli_netlist = json.load(handle)

        service_bytes = canonical(result["result"]["netlist"])
        cli_bytes = canonical(cli_netlist)
        check(
            service_bytes == cli_bytes,
            f"synth {design}: service netlist differs from CLI artifact\n"
            f"service: {service_bytes[:400]}\ncli: {cli_bytes[:400]}",
        )
        print(
            f"  synth {design}: netlist JSON identical "
            f"({len(cli_bytes)} canonical bytes)"
        )


def smoke_verify(server: Server) -> None:
    for design, expected in (("delement", 0), ("mp-forward-pkt", 0)):
        spec_path = os.path.join(_DATA, f"{design}.g")
        with open(spec_path, encoding="utf-8") as handle:
            spec_text = handle.read()
        result = server.run_job({"kind": "verify", "spec": spec_text})
        service_code = result["result"]["exit_code"]
        proc = cli(["verify", spec_path], expect_codes=(0, 1, 3))
        check(
            service_code == proc.returncode == expected,
            f"verify {design}: service exit {service_code}, "
            f"CLI exit {proc.returncode}, expected {expected}",
        )
        print(f"  verify {design}: exit code {service_code} matches CLI")


def smoke_table1(server: Server, scratch: str) -> None:
    result = server.run_job(
        {"kind": "table1", "options": {"designs": list(TABLE1_DESIGNS)}}
    )
    check(result["status"] == "done", f"table1 job: {result['status']}")
    service_rows = [
        strip_volatile(row) for row in result["result"]["rows"]
    ]

    json_path = os.path.join(scratch, "table1.json")
    cli(["table1", *TABLE1_DESIGNS, "--json", json_path])
    with open(json_path, encoding="utf-8") as handle:
        cli_rows = [
            strip_volatile(row) for row in json.load(handle)["table1"]
        ]

    by_name = sorted(service_rows, key=lambda row: row["name"])
    cli_by_name = sorted(cli_rows, key=lambda row: row["name"])
    check(
        canonical(by_name) == canonical(cli_by_name),
        "table1 rows differ from the CLI:\n"
        f"service: {canonical(by_name)}\ncli: {canonical(cli_by_name)}",
    )
    print(
        f"  table1 {','.join(TABLE1_DESIGNS)}: "
        f"{len(by_name)} rows identical after stripping timings"
    )


#: the corpus sweep both faces run (fast families, pinned seed)
CORPUS_SPEC = {
    "schema": "repro-corpus-spec/1",
    "count": 5,
    "seed": 2,
    "name_prefix": "smoke",
    "families": [
        {"family": "token_ring", "params": {"channels": [2, 4]}},
        {"family": "linear_pipeline", "params": {"stages": [2, 4]}},
        {"family": "arbiter", "params": {"clients": [2, 3]}},
    ],
}


def smoke_corpus(server: Server, scratch: str) -> None:
    result = server.run_job(
        {"kind": "corpus", "corpus": CORPUS_SPEC,
         "options": {"max_states": 20_000}}
    )
    check(result["status"] == "done", f"corpus job: {result['status']}")
    service_manifest = canonical(result["result"]["manifest"])

    spec_path = os.path.join(scratch, "corpus.json")
    manifest_path = os.path.join(scratch, "corpus-manifest.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(CORPUS_SPEC, handle)
    cli(["batch", "--corpus", spec_path, "--max-states", "20000",
         "--manifest", manifest_path])
    with open(manifest_path, encoding="utf-8") as handle:
        cli_manifest = handle.read()
    check(
        service_manifest == cli_manifest,
        "corpus manifest differs from the CLI:\n"
        f"service: {service_manifest[:400]}\ncli: {cli_manifest[:400]}",
    )
    print(
        f"  corpus: {result['result']['designs']} designs, manifest "
        f"identical to repro-si batch --corpus ({len(cli_manifest)} bytes)"
    )


def smoke_keepalive(server: Server) -> None:
    """Persistent connections: one socket, many requests."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        response.read()
        check(response.status == 200, f"healthz returned {response.status}")
        check(
            response.getheader("Connection") == "keep-alive",
            "first response not marked keep-alive: "
            f"{response.getheader('Connection')!r}",
        )
        sock = conn.sock
        check(sock is not None, "connection dropped after first response")
        for path in ("/v1/stats", "/v1/jobs", "/healthz"):
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()
            check(response.status == 200, f"{path} returned {response.status}")
            check(
                conn.sock is sock,
                f"socket was not reused for {path} (new connection opened)",
            )
        conn.request("GET", "/healthz", headers={"Connection": "close"})
        response = conn.getresponse()
        response.read()
        check(
            response.getheader("Connection") == "close",
            "Connection: close request not honoured in the response",
        )
        check(
            conn.sock is None,
            "server kept the connection open after Connection: close",
        )
        print("  keep-alive: 4 requests on one socket, close opt-out honoured")
    finally:
        conn.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as scratch:
        server = Server(scratch)
        try:
            print(f"service-smoke: server up on port {server.port}")
            smoke_keepalive(server)
            smoke_synth(server, scratch)
            smoke_verify(server)
            smoke_table1(server, scratch)
            smoke_corpus(server, scratch)

            status, report = server.request("POST", "/v1/shutdown")
            check(status == 200, f"shutdown returned {status}")
            check(
                report["drained"] is True and report["pending"] == 0,
                f"drain leaked jobs: {report}",
            )
            exit_code = server.proc.wait(timeout=60)
            output = server.proc.stdout.read()
            check(
                exit_code == 0,
                f"server exited {exit_code} (want 0):\n{output}",
            )
            check(
                "clean shutdown" in output,
                f"server never reported a clean shutdown:\n{output}",
            )
            print("service-smoke: clean shutdown, exit 0")
        except SmokeFailure as failure:
            print(f"service-smoke: FAIL: {failure}", file=sys.stderr)
            server.proc.kill()
            return 1
        finally:
            if server.proc.poll() is None:
                server.proc.kill()
                server.proc.wait(timeout=30)
    print("service-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
