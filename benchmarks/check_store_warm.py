"""CI gate: the persistent artifact store actually warm-starts a batch.

Runs ``repro-si batch`` twice over the bundled benchmark corpus against
one fresh store directory and asserts the store's whole contract:

* the warm run reports **zero** store misses (no reachability, MC,
  insertion or hazard-check recomputation at all) and at least one hit
  for every design;
* the two runs' manifests are **byte-identical** (the manifest carries
  only deterministic facts -- cache state must not leak into results).

Exit 0 on success, 1 on any violation.  Usage::

    python benchmarks/check_store_warm.py [--jobs N]
"""

import argparse
import glob
import json
import os
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main as repro_si  # noqa: E402


def run_once(specs, store, out_dir, label, jobs):
    manifest = os.path.join(out_dir, f"manifest-{label}.json")
    stats = os.path.join(out_dir, f"stats-{label}.json")
    argv = (
        ["batch", *specs]
        + ["--store", store, "--jobs", str(jobs)]
        + ["--manifest", manifest, "--stats", stats]
    )
    code = repro_si(argv)
    if code != 0:
        raise SystemExit(f"FAIL: {label} batch exited {code}")
    with open(manifest, "rb") as handle:
        manifest_bytes = handle.read()
    with open(stats, "r", encoding="utf-8") as handle:
        return manifest_bytes, json.load(handle)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    specs = sorted(glob.glob(os.path.join(REPO, "src/repro/bench/data/*.g")))
    if len(specs) < 3:
        print(f"FAIL: expected >= 3 bundled designs, found {len(specs)}")
        return 1

    with tempfile.TemporaryDirectory() as scratch:
        store = os.path.join(scratch, "artifact-store")
        cold_manifest, cold_stats = run_once(
            specs, store, scratch, "cold", args.jobs
        )
        warm_manifest, warm_stats = run_once(
            specs, store, scratch, "warm", args.jobs
        )

    failures = []
    traffic = warm_stats["store_traffic"]
    if traffic.get("miss", 0) != 0:
        failures.append(f"warm run recomputed stages: {traffic}")
    for name, design in sorted(warm_stats["store_traffic_by_design"].items()):
        if design.get("hit", 0) < 1:
            failures.append(f"design {name!r} saw no store hit: {design}")
    if cold_manifest != warm_manifest:
        failures.append("cold and warm manifests differ byte-for-byte")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: {len(specs)} designs, warm run {traffic.get('hit', 0)} hit(s) "
        f"/ 0 miss(es), manifests byte-identical "
        f"(cold {cold_stats['seconds_total']:.2f}s -> "
        f"warm {warm_stats['seconds_total']:.2f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
