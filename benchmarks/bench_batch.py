"""Sharded batch orchestration: cold sweep vs resumed sweep.

Runs one corpus -- the bundled Table-1 designs plus a few generated
families -- through ``run_batch`` three ways:

* **flat cold**: single flat store, the determinism baseline;
* **sharded cold**: fresh ``--shards``-partitioned store with a worker
  pool, the distributed-sweep configuration;
* **resumed**: the same sharded sweep resumed from the cold run's
  manifest -- every design skips on its spec fingerprint, which is the
  whole point of resumable manifests.

Byte-identity of all three manifests is asserted on every measurement
(a fast resume that changed the answers would be meaningless), and the
cold-vs-resumed wall-clock lands in the ``batch`` section of
``BENCH_pipeline.json``, gated by ``check_regression.py --sections
batch`` (floor: resumed >= 5x faster than cold).

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py [--shards 4] [--jobs 2]
                                                    [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.corpus import alternator, concurrent_fork, token_ring  # noqa: E402
from repro.bench.suite import update_pipeline_json  # noqa: E402
from repro.pipeline.batch import run_batch  # noqa: E402
from repro.stg.writer import dumps_g  # noqa: E402


def build_corpus(scratch: str) -> list:
    """The bundled Table-1 corpus plus small generated families."""
    specs = sorted(glob.glob(os.path.join(REPO, "src/repro/bench/data/*.g")))
    generated = [
        token_ring(2),
        token_ring(3),
        concurrent_fork(2),
        concurrent_fork(3),
        alternator(2),
        alternator(3),
    ]
    for stg in generated:
        path = os.path.join(scratch, f"{stg.name}.g")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dumps_g(stg))
        specs.append(path)
    return specs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="trajectory file to merge the 'batch' section into",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as scratch:
        specs = build_corpus(scratch)
        manifest = os.path.join(scratch, "manifest.json")

        started = time.perf_counter()
        flat = run_batch(specs, store=os.path.join(scratch, "flat"))
        flat_s = time.perf_counter() - started

        started = time.perf_counter()
        cold = run_batch(
            specs,
            store=os.path.join(scratch, "sharded"),
            jobs=args.jobs,
            shards=args.shards,
        )
        cold_s = time.perf_counter() - started
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write(cold.manifest_text())

        started = time.perf_counter()
        resumed = run_batch(
            specs,
            store=os.path.join(scratch, "sharded"),
            jobs=args.jobs,
            shards=args.shards,
            resume=manifest,
        )
        resumed_s = time.perf_counter() - started

    identical = (
        flat.manifest_text() == cold.manifest_text() == resumed.manifest_text()
    )
    if not identical:
        print("bench_batch: FAIL: manifests are not byte-identical",
              file=sys.stderr)
        return 1
    skips = resumed.stats()["scheduler"]["resume_skips"]
    if skips != len(specs):
        print(f"bench_batch: FAIL: resumed only {skips}/{len(specs)} designs",
              file=sys.stderr)
        return 1

    speedup = cold_s / resumed_s if resumed_s > 0 else float("inf")
    print(f"corpus: {len(specs)} designs, shards={args.shards}, jobs={args.jobs}")
    print(f"flat cold    : {flat_s * 1000:9.1f} ms")
    print(f"sharded cold : {cold_s * 1000:9.1f} ms "
          f"(steals {cold.stats()['scheduler']['steals']})")
    print(f"resumed      : {resumed_s * 1000:9.1f} ms "
          f"({skips} resume-skips, {speedup:.0f}x)")

    payload = {
        "designs": len(specs),
        "shards": args.shards,
        "jobs": args.jobs,
        "flat_cold_ms": round(flat_s * 1000, 1),
        "cold_ms": round(cold_s * 1000, 1),
        "resumed_ms": round(resumed_s * 1000, 3),
        "resumed_speedup": round(speedup, 1),
        "resume_skips": skips,
        "steals": cold.stats()["scheduler"]["steals"],
        "manifests_identical": identical,
    }
    path = update_pipeline_json("batch", payload, args.out)
    print(f"\nwrote section 'batch' to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
