"""Micro-benchmarks of the substrates (extension; not in the paper).

The paper notes its naive Boolean-program solving could be sped up "by
several orders of magnitude"; these measurements document where the
substrate time goes in this implementation: the DPLL solver, the
two-level minimiser, BDD construction, and state-graph elaboration.
"""

import itertools


from repro.corpus import concurrent_fork, token_ring
from repro.boolean.bdd import BDD
from repro.boolean.minimize import minimize_onset
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.stg.reachability import stg_to_state_graph


def test_sat_pigeonhole(benchmark):
    """UNSAT pigeonhole PHP(6,5): a classic resolution-hard instance."""

    def build_and_solve():
        pigeons, holes = 6, 5
        cnf = CNF()
        var = {
            (p, h): cnf.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            cnf.at_least_one([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            cnf.at_most_one([var[(p, h)] for p in range(pigeons)])
        return Solver.from_cnf(cnf).solve()

    assert benchmark(build_and_solve) is None


def test_sat_satisfiable_chain(benchmark):
    def build_and_solve():
        cnf = CNF()
        vs = [cnf.new_var() for _ in range(120)]
        cnf.add(vs[0])
        for left, right in zip(vs, vs[1:]):
            cnf.add(-left, right)
        return Solver.from_cnf(cnf).solve()

    model = benchmark(build_and_solve)
    assert model is not None and model[120]


def test_minimizer_five_variables(benchmark):
    signals = tuple("abcde")
    on = [
        dict(zip(signals, bits))
        for bits in itertools.product((0, 1), repeat=5)
        if sum(bits) in (2, 3)
    ]
    cover = benchmark(minimize_onset, signals, on)
    assert cover


def test_bdd_parity_function(benchmark):
    """Parity needs an exponential SOP but a linear BDD."""
    signals = tuple(f"v{i}" for i in range(12))

    def build():
        bdd = BDD(signals)
        node = bdd.constant(False)
        for signal in signals:
            node = bdd.xor(node, bdd.var(signal))
        return bdd, node

    bdd, node = benchmark(build)
    assert bdd.satisfy_count(node) == 2 ** 11
    # parity has two nodes per level except the bottom one: 2n - 1
    assert bdd.node_count(node) == 2 * 12 - 1


def test_reachability_token_ring(benchmark):
    stg = token_ring(10)
    sg = benchmark(stg_to_state_graph, stg)
    assert len(sg) == 40


def test_reachability_concurrent_fork(benchmark):
    stg = concurrent_fork(6)
    sg = benchmark(stg_to_state_graph, stg)
    assert len(sg) > 2 ** 6


def test_regions_synthesis_roundtrip(benchmark):
    """Theory-of-regions Petri-net synthesis of a benchmark SG."""
    from repro.bench.suite import load_benchmark
    from repro.stg.reachability import stg_to_state_graph
    from repro.stg.synthesis import stg_from_state_graph

    sg = stg_to_state_graph(load_benchmark("nak-pa"))
    stg = benchmark(stg_from_state_graph, sg)
    assert len(stg.net.transitions) == 18
