"""Ablation: complex gates (CSC) vs basic gates (MC).

The paper's introduction motivates the whole work with this contrast:
complex-gate theory [3, 8, 12] needs only Complete State Coding, but
"the required combinational logic functions are too complex to have
single complex gate implementations from a standard library".  This
harness quantifies the trade on the paper's own figures:

* Figure 1 satisfies CSC: a complex-gate implementation exists with *no*
  inserted signals and is hazard-free (each gate atomic) -- but its
  functions are feedback-laden SOPs no basic-gate library provides;
* the basic-gate route pays one inserted state signal and gets an
  implementation made exclusively of AND/OR/C elements.
"""

from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation


def test_complex_gate_route(fig1, benchmark):
    impl = benchmark(complex_gate_synthesize, fig1)
    netlist = complex_gate_netlist(impl)
    report = verify_speed_independence(netlist, fig1)
    assert report.hazard_free
    print("\n[complex gates, no insertion needed]")
    print(impl.equations())
    print(f"literals: {impl.literal_count()}")


def test_basic_gate_route(fig1, benchmark):
    def full_route():
        result = insert_state_signals(fig1, max_models=400)
        return result, synthesize(result.sg, share_gates=True)

    result, impl = benchmark(full_route)
    netlist = netlist_from_implementation(impl, "C")
    report = verify_speed_independence(netlist, result.sg)
    assert report.hazard_free
    print(f"\n[basic gates, {len(result.added_signals)} signal(s) inserted]")
    print(impl.equations())
    print(f"literals: {impl.literal_count()}, gates: {netlist.gate_count()}")


def test_csc_insufficiency_for_basic_gates(fig1, benchmark):
    """CSC holds but the basic-gate architecture still needs repair --
    exactly the gap between Chu's condition and the MC requirement."""
    from repro.core.mc import analyze_mc
    from repro.sg.csc import has_csc

    assert has_csc(fig1)
    report = benchmark(analyze_mc, fig1)
    assert not report.satisfied
