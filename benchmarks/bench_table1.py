"""Table 1: results of MC-reduction on the nine benchmark designs.

For every design the harness runs the full pipeline -- STG elaboration,
MC analysis, SAT-driven state-signal insertion, standard-C synthesis and
gate-level speed-independence verification -- and prints the paper's
table with the measured columns alongside.

The designs are reconstructions with the interface sizes of the paper's
Table 1 (see DESIGN.md); the reproduction criterion is the *shape* of
the added-signals column (small, 0-2) and that every run completes far
inside the paper's 5-minute-per-design budget.
"""

import pytest

from repro.bench.suite import (
    BENCHMARKS,
    format_table1,
    paper_row,
    run_pipeline,
)

_RESULTS = {}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_design(name, benchmark):
    result = benchmark.pedantic(
        run_pipeline, args=(name,), kwargs={"verify": True}, rounds=1, iterations=1
    )
    _RESULTS[name] = result
    paper_added = paper_row(name)[2]
    # the paper's 5-minute timeout on a DEC 5000; we demand far less
    assert result.elapsed_seconds < 300
    # every design must end up hazard-free
    assert result.hazard_report is not None and result.hazard_report.hazard_free
    # shape: the insertion count stays small, tracking the paper's column
    assert result.added_signals <= max(2, paper_added + 1)
    print(
        f"\n[table1] {name}: in={len(result.stg.inputs)} "
        f"out={len(result.stg.non_inputs)} added={result.added_signals} "
        f"(paper: {paper_added}) states={len(result.insertion.sg)} "
        f"time={result.elapsed_seconds:.2f}s"
    )


def test_print_full_table():
    if len(_RESULTS) == len(BENCHMARKS):
        results = [_RESULTS[name] for name in BENCHMARKS]
        print("\n" + format_table1(results))
