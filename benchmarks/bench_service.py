"""Load-test harness for the synthesis service (``repro-si serve``).

Boots the service **in-process** (the HTTP server on a background
event-loop thread, real sockets on loopback), then measures what a
resident analysis world buys over one-shot CLI invocations:

* **cold single-shot**: the first synthesis of a design on a fresh
  server -- empty store, empty memo -- timed from ``POST /v1/jobs`` to
  the terminal event, i.e. what a cold CLI run of the same design costs
  plus the full HTTP round trip;
* **warm latency distribution**: ``--requests`` submissions of the same
  design from ``--clients`` concurrent client threads against the now
  warm world, reported as p50/p99/mean and requests/second.

Every latency is event-driven (the client blocks on the job's NDJSON
event stream until the terminal status arrives), so no polling interval
pollutes the tail.

Results land in the ``service`` section of ``BENCH_pipeline.json``
(``--out`` redirects, e.g. to a scratch file in CI).  The companion
gate in ``check_regression.py`` fails when ``warm_speedup`` -- cold
single-shot over warm p50 -- drops below its floor (10x): the entire
point of the resident service is that the warm path amortises
reachability/insertion/synthesis across requests, and a speedup
collapse means the shared store/memo stopped serving.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
        [--design nowick] [--clients 6] [--requests 120] [--out PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.bench.suite import update_pipeline_json
from repro.service import JobManager, ServiceServer

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_JSON_PATH = os.path.join(_REPO_ROOT, "BENCH_pipeline.json")
_DATA = os.path.join(_REPO_ROOT, "src", "repro", "bench", "data")

#: the gate's floor: warm p50 must beat cold single-shot by this factor
WARM_SPEEDUP_FLOOR = 10.0


class ServerThread:
    """The service in-process: loop on a daemon thread, HTTP on loopback."""

    def __init__(self, **manager_kwargs):
        self._kwargs = manager_kwargs
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self.manager: Optional[JobManager] = None
        self.port: Optional[int] = None
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30) or self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")

    def _main(self) -> None:
        async def _amain() -> None:
            try:
                self.manager = JobManager(**self._kwargs)
                server = ServiceServer(self.manager, host="127.0.0.1", port=0)
                await server.start()
                self.port = server.port
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await server.serve_until_shutdown()
            await asyncio.sleep(0.05)  # flush the shutdown response

        asyncio.run(_amain())

    def request(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=300)
        try:
            if isinstance(body, dict):
                body = json.dumps(body)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def synth_round_trip(self, document: Dict) -> float:
        """Submit one job, block on its event stream -> wall seconds."""
        start = time.perf_counter()
        status, doc = self.request("POST", "/v1/jobs", document)
        if status != 202:
            raise RuntimeError(f"submit failed: {status} {doc}")
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=300)
        try:
            conn.request("GET", f"/v1/jobs/{doc['id']}/events")
            conn.getresponse().read()  # blocks until the terminal event
        finally:
            conn.close()
        elapsed = time.perf_counter() - start
        status, final = self.request("GET", f"/v1/jobs/{doc['id']}")
        if final["status"] != "done":
            raise RuntimeError(
                f"job {doc['id']} ended {final['status']}: {final['detail']}"
            )
        return elapsed

    def shutdown(self) -> Dict:
        _, report = self.request("POST", "/v1/shutdown")
        self._thread.join(timeout=60)
        return report


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (nearest-rank) of a non-empty sample list."""
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(q / 100 * len(ranked)) - 1))
    return ranked[index]


def run_load(
    design: str,
    clients: int,
    requests: int,
    backend: Optional[str] = None,
    quick: bool = False,
) -> Dict:
    """One full measurement: fresh server, cold shot, concurrent warm load."""
    with open(
        os.path.join(_DATA, f"{design}.g"), encoding="utf-8"
    ) as handle:
        spec_text = handle.read()
    document = {"kind": "synth", "spec": spec_text, "name": design}

    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        server = ServerThread(
            store=os.path.join(scratch, "store"), backend=backend
        )
        try:
            cold_s = server.synth_round_trip(document)

            latencies: List[float] = []
            errors: List[BaseException] = []
            lock = threading.Lock()
            share = [requests // clients] * clients
            for extra in range(requests % clients):
                share[extra] += 1

            def client(count: int) -> None:
                try:
                    for _ in range(count):
                        elapsed = server.synth_round_trip(document)
                        with lock:
                            latencies.append(elapsed)
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(count,))
                for count in share if count
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
            if errors:
                raise RuntimeError(f"warm load failed: {errors[0]!r}")

            _, stats = server.request("GET", "/v1/stats")
        finally:
            report = server.shutdown()
        if report.get("pending"):
            raise RuntimeError(f"shutdown leaked jobs: {report}")

    warm_p50 = percentile(latencies, 50)
    return {
        "design": design,
        "backend": stats["backend"],
        "mode": stats["mode"],
        "clients": len(threads),
        "requests": len(latencies),
        "quick": quick,
        "cold_ms": round(cold_s * 1000, 3),
        "warm_p50_ms": round(warm_p50 * 1000, 3),
        "warm_p99_ms": round(percentile(latencies, 99) * 1000, 3),
        "warm_mean_ms": round(statistics.fmean(latencies) * 1000, 3),
        "requests_per_second": round(len(latencies) / wall, 1),
        "warm_speedup": round(cold_s / warm_p50, 1),
        "cache": stats["cache"],
        "store_traffic": stats["store"]["traffic"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="nowick",
        help="Table-1 design to load-test (default: nowick, whose cold "
        "pipeline dominates the HTTP overhead)",
    )
    parser.add_argument(
        "--clients", type=int, default=6,
        help="concurrent client threads (default 6)",
    )
    parser.add_argument(
        "--requests", type=int, default=120,
        help="total warm requests across all clients (default 120)",
    )
    parser.add_argument("--backend", default=None, help="analysis backend")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI preset: 3 clients, 30 warm requests",
    )
    parser.add_argument(
        "--out", default=_JSON_PATH,
        help="BENCH_pipeline.json to update (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.clients, args.requests = 3, 30

    payload = run_load(
        args.design, args.clients, args.requests,
        backend=args.backend, quick=args.quick,
    )
    path = update_pipeline_json("service", payload, path=args.out)
    print(
        f"service[{payload['design']}]: cold {payload['cold_ms']:.1f}ms, "
        f"warm p50 {payload['warm_p50_ms']:.1f}ms / "
        f"p99 {payload['warm_p99_ms']:.1f}ms, "
        f"{payload['requests_per_second']:.0f} req/s "
        f"({payload['clients']} clients x {payload['requests']} reqs) "
        f"-> warm speedup {payload['warm_speedup']:.1f}x"
    )
    print(f"service section written to {path}")
    if payload["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        print(
            f"bench_service: warm speedup {payload['warm_speedup']:.1f}x "
            f"below the {WARM_SPEEDUP_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
