"""Randomized edit-sequence oracle: incremental == from-scratch, always.

Applies chains of random :class:`~repro.pipeline.delta.SpecDelta` s to
generated STG families (``repro.corpus``) and the Table-1
designs, and checks on every edit that

- an edit that *applies* yields a warm ``Pipeline.run(spec, delta=...)``
  netlist artifact byte-identical (fingerprint chain) to a cold
  from-scratch synthesis of the edited spec, and
- an edit that *fails* (delta does not apply, edited spec unbounded or
  otherwise unsynthesisable) fails identically on both paths — same
  exception type, same message.

Successful edits accumulate: the next edit applies on top, so one
design contributes a whole random trajectory through spec space,
including verdict-flip edits that introduce or resolve CSC conflicts.
This is the expensive, exhaustive version of the tier-1 test in
``tests/test_incremental.py``; CI runs it on pull requests only.

Usage::

    PYTHONPATH=src python benchmarks/incremental_oracle.py [--edits 220]
                                                           [--seed 0]
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.corpus import (
    alternator,
    concurrent_fork,
    random_series_parallel,
    token_ring,
)
from repro.bench.suite import BENCHMARKS, load_benchmark
from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec
from repro.pipeline.delta import (
    AddEdge,
    RemoveEdge,
    RetypeSignal,
    SetMarking,
    SpecDelta,
)

#: (label, STG factory, max edits per trajectory) — the per-design cap
#: keeps the long-tail Table-1 designs (~1s per cold synthesis) from
#: dominating the sweep's wall time.  Every oracle edit pays a full cold
#: synthesis, so the corpus sticks to designs whose cold run is bounded:
#: random_series_parallel at leaves=4 can take minutes per cold run
#: (seed-dependent insertion blow-up), which is why only the ~15s
#: leaves=3/seed=1 instance appears, with a small edit cap.
CORPUS = [
    ("token_ring(2)", lambda: token_ring(2), 40),
    ("token_ring(3)", lambda: token_ring(3), 40),
    ("concurrent_fork(2)", lambda: concurrent_fork(2), 30),
    ("concurrent_fork(3)", lambda: concurrent_fork(3), 20),
    ("alternator(2)", lambda: alternator(2), 30),
    ("alternator(3)", lambda: alternator(3), 24),
    ("series_parallel(1,3)", lambda: random_series_parallel(1, leaves=3), 4),
] + [(name, (lambda n=name: load_benchmark(n)), 6) for name in BENCHMARKS]


def random_delta(rng: random.Random, stg) -> SpecDelta:
    """One random edit, biased toward ones that keep the STG synthesisable."""
    transitions = sorted(stg.net.transitions)
    roll = rng.random()
    if roll < 0.35:
        signal = rng.choice(sorted(stg.outputs | stg.internal))
        role = "internal" if signal in stg.outputs else "output"
        return SpecDelta((RetypeSignal(signal, role),))
    if roll < 0.60:
        source, target = rng.choice(transitions), rng.choice(transitions)
        return SpecDelta((AddEdge(source, target, marked=rng.random() < 0.5),))
    if roll < 0.85:
        net = stg.net
        droppable = sorted(
            (next(iter(net.place_preset[p])), next(iter(net.place_postset[p])))
            for p in net.places
            if len(net.place_preset[p]) == 1 and len(net.place_postset[p]) == 1
        )
        if droppable:
            return SpecDelta((RemoveEdge(*droppable[rng.randrange(len(droppable))]),))
        source, target = rng.choice(transitions), rng.choice(transitions)
        return SpecDelta((RemoveEdge(source, target),))
    places = sorted(stg.net.places)
    count = max(1, len(stg.initial_marking))
    return SpecDelta((SetMarking(tuple(rng.sample(places, count))),))


def sweep_design(label: str, stg, rng: random.Random, max_edits: int) -> dict:
    """One random trajectory; returns {'edits': n, 'applied': n, 'failed': n}."""
    context = AnalysisContext()
    pipeline = Pipeline(context)
    spec = PipelineSpec.from_stg(stg, verify=False)
    counts = {"edits": 0, "applied": 0, "failed": 0}
    try:
        pipeline.run(spec)
    except Exception as exc:  # noqa: BLE001 - unsynthesisable seed design
        print(f"{label}: base synthesis failed ({exc}); skipped")
        return counts
    for _ in range(max_edits):
        delta = random_delta(rng, spec.stg)
        counts["edits"] += 1
        try:
            warm = pipeline.run(spec, delta=delta)
            warm_error = None
        except Exception as exc:  # noqa: BLE001 - compared against cold
            warm, warm_error = None, exc
        try:
            edited = spec.apply_delta(delta)
            cold = Pipeline(AnalysisContext()).run(edited)
            cold_error = None
        except Exception as exc:  # noqa: BLE001
            cold, cold_error = None, exc
        if warm_error is not None or cold_error is not None:
            if type(warm_error) is not type(cold_error) or str(warm_error) != str(
                cold_error
            ):
                raise AssertionError(
                    f"{label}: edit {delta.describe()!r} failed differently: "
                    f"warm={warm_error!r} cold={cold_error!r}"
                )
            counts["failed"] += 1
            continue
        if warm.fingerprint != cold.fingerprint:
            raise AssertionError(
                f"{label}: edit {delta.describe()!r} broke byte-identity "
                f"({warm.fingerprint[:12]} != {cold.fingerprint[:12]})"
            )
        spec = edited
        counts["applied"] += 1
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--edits", type=int, default=220,
        help="minimum total edits to exercise (default 220)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    total = {"edits": 0, "applied": 0, "failed": 0}
    started = time.perf_counter()
    passes = 0
    while total["edits"] < args.edits:
        passes += 1
        for label, factory, max_edits in CORPUS:
            counts = sweep_design(label, factory(), rng, max_edits)
            for key in total:
                total[key] += counts[key]
            print(
                f"{label:<22} edits={counts['edits']:>3} "
                f"applied={counts['applied']:>3} failed={counts['failed']:>3} "
                f"(total {total['edits']})"
            )
            if total["edits"] >= args.edits and passes > 1:
                break
    elapsed = time.perf_counter() - started
    print(
        f"\nincremental oracle: {total['edits']} edits "
        f"({total['applied']} applied, {total['failed']} failed identically) "
        f"byte-identical in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
