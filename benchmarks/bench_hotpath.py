"""Hot-path regression harness for the bitmask analysis engine.

Times ``analyze_mc`` on the two stress generators the engine was tuned
on -- ``concurrent_fork(5)`` (exponential state count, region-analysis
bound) and ``token_ring(12)`` (wide smallest cover cubes, greedy-search
bound) -- and records the results into the ``hotpath`` section of
``BENCH_pipeline.json`` next to the frozen pre-engine baseline, so any
later PR can see at a glance whether the hot path regressed.

Each measurement builds a *fresh* state graph per round: the engine
memoises aggressively in ``sg._analysis_cache``, and a warm graph would
time cache hits instead of the analysis.

Run with ``pytest benchmarks/bench_hotpath.py``; the ``smoke`` marker
selects a sub-second subset (``-m smoke``) for quick sanity checks.
"""

import os

import pytest

from repro.bench.generators import concurrent_fork, token_ring
from repro.bench.suite import update_pipeline_json
from repro.core.mc import analyze_mc
from repro.sg.bitengine import bit_analysis
from repro.stg.reachability import stg_to_state_graph

#: analyze_mc wall time before the bitmask engine (same host, fresh
#: graph per run, best/median over 8 interleaved trials of the paired
#: A/B harness that gated the engine's >= 3x acceptance criterion).
#: Frozen: do not re-measure.
PRE_CHANGE_BASELINE_MS = {
    "concurrent_fork(5)": {"best": 17.82, "median": 22.56},
    "token_ring(12)": {"best": 23.81, "median": 28.53},
}

#: the engine's times from the *same* paired run as the baseline above
#: (fork(5): 3.06x best / 3.34x median; ring(12): 4.68x / 4.83x).
#: Frozen alongside it so the acceptance pair survives noisy reruns.
PAIRED_POST_CHANGE_MS = {
    "concurrent_fork(5)": {"best": 5.82, "median": 6.76},
    "token_ring(12)": {"best": 5.09, "median": 5.90},
}

CASES = {
    "concurrent_fork(5)": lambda: concurrent_fork(5),
    "token_ring(12)": lambda: token_ring(12),
}

_measured = {}

_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_pipeline.json",
)


@pytest.fixture(scope="module", autouse=True)
def _record_hotpath_json():
    """After the module's benchmarks ran, merge them into the JSON log."""
    yield
    if not _measured:
        return
    update_pipeline_json(
        "hotpath",
        {
            "pre_change_baseline_ms": PRE_CHANGE_BASELINE_MS,
            "paired_post_change_ms": PAIRED_POST_CHANGE_MS,
            "measured_ms": _measured,
        },
        path=_JSON_PATH,
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_hotpath_analyze_mc(case, benchmark):
    stg = CASES[case]()

    def fresh_graph():
        return (stg_to_state_graph(stg),), {}

    report = benchmark.pedantic(
        analyze_mc, setup=fresh_graph, rounds=7, iterations=1
    )
    assert report.satisfied
    stats = benchmark.stats.stats
    _measured[case] = {
        "best": stats.min * 1000,
        "median": stats.median * 1000,
    }
    baseline = PRE_CHANGE_BASELINE_MS[case]
    print(
        f"\n[hotpath] {case}: best {stats.min * 1000:.2f}ms "
        f"(pre-engine {baseline['best']:.2f}ms, "
        f"{baseline['best'] / (stats.min * 1000):.2f}x)"
    )


@pytest.mark.smoke
@pytest.mark.parametrize("maker,n", [(concurrent_fork, 3), (token_ring, 6)])
def test_hotpath_smoke(maker, n):
    """Sub-second sanity check: the engine path runs and counts work."""
    sg = stg_to_state_graph(maker(n))
    report = analyze_mc(sg)
    assert report.satisfied
    engine = bit_analysis(sg)
    assert engine.cube_evals > 0  # the bitset path actually ran
