"""Hot-path regression harness for the bitmask analysis engine.

Times ``analyze_mc`` on the two stress generators the engine was tuned
on -- ``concurrent_fork(5)`` (exponential state count, region-analysis
bound) and ``token_ring(12)`` (wide smallest cover cubes, greedy-search
bound) -- and records the results into the ``hotpath`` section of
``BENCH_pipeline.json`` next to the frozen pre-engine baseline, so any
later PR can see at a glance whether the hot path regressed.

Also measures the persistent artifact store's cold-vs-warm win on the
full Table-1 corpus (the ``store`` section): the warm sweep must serve
every stage from disk (zero misses) and beat the cold sweep's wall
time.

The ``hazard-sim`` section records the compiled-IR win on circuit
composition: the packed-int BFS (:func:`build_circuit_state_graph`)
against the retained per-literal dict reference
(:func:`build_circuit_state_graph_reference`) over every synthesized
Table-1 netlist, next to the frozen paired A/B that accepted the IR.

The ``wordlane`` section records the paired A/B for the word-lane
analysis backend: ``analyze_mc`` through the lane engine
(:mod:`repro.sg.wordlane`) against the plain bitengine on the same two
stress generators, byte-identity of the MC reports asserted before any
timing.  The frozen pair was measured with the numpy kernel; the active
kernel is recorded alongside the measurements.

Each measurement builds a *fresh* state graph per round: the engine
memoises aggressively in ``sg._analysis_cache``, and a warm graph would
time cache hits instead of the analysis.

Run with ``pytest benchmarks/bench_hotpath.py``; the ``smoke`` marker
selects a sub-second subset (``-m smoke``) for quick sanity checks.
"""

import os

import pytest

from repro.corpus import concurrent_fork, token_ring
from repro.bench.suite import update_pipeline_json
from repro.core.mc import analyze_mc
from repro.sg.bitengine import bit_analysis
from repro.stg.reachability import stg_to_state_graph

#: analyze_mc wall time before the bitmask engine (same host, fresh
#: graph per run, best/median over 8 interleaved trials of the paired
#: A/B harness that gated the engine's >= 3x acceptance criterion).
#: Frozen: do not re-measure.
PRE_CHANGE_BASELINE_MS = {
    "concurrent_fork(5)": {"best": 17.82, "median": 22.56},
    "token_ring(12)": {"best": 23.81, "median": 28.53},
}

#: the engine's times from the *same* paired run as the baseline above
#: (fork(5): 3.06x best / 3.34x median; ring(12): 4.68x / 4.83x).
#: Frozen alongside it so the acceptance pair survives noisy reruns.
PAIRED_POST_CHANGE_MS = {
    "concurrent_fork(5)": {"best": 5.82, "median": 6.76},
    "token_ring(12)": {"best": 5.09, "median": 5.90},
}

CASES = {
    "concurrent_fork(5)": lambda: concurrent_fork(5),
    "token_ring(12)": lambda: token_ring(12),
}

_measured = {}

_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_pipeline.json",
)


@pytest.fixture(scope="module", autouse=True)
def _record_hotpath_json():
    """After the module's benchmarks ran, merge them into the JSON log."""
    yield
    if not _measured:
        return
    update_pipeline_json(
        "hotpath",
        {
            "pre_change_baseline_ms": PRE_CHANGE_BASELINE_MS,
            "paired_post_change_ms": PAIRED_POST_CHANGE_MS,
            "measured_ms": _measured,
        },
        path=_JSON_PATH,
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_hotpath_analyze_mc(case, benchmark):
    stg = CASES[case]()

    def fresh_graph():
        return (stg_to_state_graph(stg),), {}

    report = benchmark.pedantic(
        analyze_mc, setup=fresh_graph, rounds=7, iterations=1
    )
    assert report.satisfied
    stats = benchmark.stats.stats
    _measured[case] = {
        "best": stats.min * 1000,
        "median": stats.median * 1000,
    }
    baseline = PRE_CHANGE_BASELINE_MS[case]
    print(
        f"\n[hotpath] {case}: best {stats.min * 1000:.2f}ms "
        f"(pre-engine {baseline['best']:.2f}ms, "
        f"{baseline['best'] / (stats.min * 1000):.2f}x)"
    )


@pytest.mark.smoke
@pytest.mark.parametrize("maker,n", [(concurrent_fork, 3), (token_ring, 6)])
def test_hotpath_smoke(maker, n):
    """Sub-second sanity check: the engine path runs and counts work."""
    sg = stg_to_state_graph(maker(n))
    report = analyze_mc(sg)
    assert report.satisfied
    engine = bit_analysis(sg)
    assert engine.cube_evals > 0  # the bitset path actually ran


# ----------------------------------------------------------------------
# Word-lane engine: paired wordlane vs bitengine analyze_mc
# ----------------------------------------------------------------------

#: analyze_mc wall time of the bitengine backend from the paired A/B run
#: that accepted the wordlane engine (numpy kernel, single-core dev
#: host, fresh graph per trial, interleaved).  Frozen: do not re-measure.
WORDLANE_PAIRED_BITENGINE_MS = {
    "concurrent_fork(5)": {"best": 5.13, "median": 5.62},
    "token_ring(12)": {"best": 5.86, "median": 6.49},
}

#: the wordlane backend's times from the *same* paired run (fork(5):
#: 1.49x best / 1.53x median; ring(12): 2.14x / 2.18x).  Frozen
#: alongside so the acceptance pair survives noisy reruns.  Measured
#: with the numpy kernel; the pure-python fallback kernel trades this
#: speedup for dependency-freedom and is not ratio-gated.
WORDLANE_PAIRED_MS = {
    "concurrent_fork(5)": {"best": 3.45, "median": 3.67},
    "token_ring(12)": {"best": 2.75, "median": 2.97},
}

_wordlane_measured = {}


@pytest.fixture(scope="module", autouse=True)
def _record_wordlane_json():
    """Merge the wordlane A/B measurements into the JSON log."""
    yield
    if not _wordlane_measured:
        return
    from repro.sg import lanes

    update_pipeline_json(
        "wordlane",
        {
            "kernel": lanes.get_kernel().name,
            "paired_bitengine_ms": WORDLANE_PAIRED_BITENGINE_MS,
            "paired_wordlane_ms": WORDLANE_PAIRED_MS,
            "measured_ms": _wordlane_measured,
        },
        path=_JSON_PATH,
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_wordlane_vs_bitengine(case):
    """The lane engine beats the plain bitengine and agrees byte-for-byte."""
    import gc
    import json
    import time

    from repro.pipeline.backends import get_backend
    from repro.pipeline.serialize import mc_report_to_json

    stg = CASES[case]()
    bitengine = get_backend("bitengine")
    wordlane = get_backend("wordlane")

    # byte identity first: the ratio is meaningless if the claims differ
    blobs = [
        json.dumps(
            mc_report_to_json(backend.analyze_mc(stg_to_state_graph(stg))),
            sort_keys=True,
        )
        for backend in (bitengine, wordlane)
    ]
    identical = blobs[0] == blobs[1]
    assert identical, f"{case}: wordlane diverged from bitengine"

    bit_times, lane_times = [], []
    for _ in range(9):  # interleaved, fresh graph per trial
        sg = stg_to_state_graph(stg)
        gc.collect()
        start = time.perf_counter()
        bitengine.analyze_mc(sg)
        bit_times.append((time.perf_counter() - start) * 1000)
        sg = stg_to_state_graph(stg)
        gc.collect()
        start = time.perf_counter()
        wordlane.analyze_mc(sg)
        lane_times.append((time.perf_counter() - start) * 1000)

    bit_times.sort()
    lane_times.sort()
    _wordlane_measured[case] = {
        "bitengine": {
            "best": round(bit_times[0], 2),
            "median": round(bit_times[4], 2),
        },
        "wordlane": {
            "best": round(lane_times[0], 2),
            "median": round(lane_times[4], 2),
        },
        "speedup_best": round(bit_times[0] / lane_times[0], 2),
        "speedup_median": round(bit_times[4] / lane_times[4], 2),
        "identical": identical,
    }
    print(
        f"\n[wordlane] {case}: wordlane {lane_times[0]:.2f}ms, "
        f"bitengine {bit_times[0]:.2f}ms "
        f"({bit_times[0] / lane_times[0]:.2f}x, identical={identical})"
    )


# ----------------------------------------------------------------------
# Persistent artifact store: cold vs warm over the Table-1 corpus
# ----------------------------------------------------------------------
_store_measured = {}


@pytest.fixture(scope="module", autouse=True)
def _record_store_json():
    """Merge the cold/warm store measurements into the JSON log."""
    yield
    if not _store_measured:
        return
    update_pipeline_json("store", _store_measured, path=_JSON_PATH)


def test_store_cold_vs_warm(tmp_path):
    """A warm store sweep recomputes nothing and beats the cold sweep.

    Runs the full Table-1 pipeline (insertion + synthesis + hazard
    check) over every bundled design twice against one store directory.
    The second sweep must be all hits -- zero reachability/MC/insertion
    recomputation -- which is the store's entire reason to exist.
    """
    import time

    from repro.bench.suite import BENCHMARKS, run_pipeline
    from repro.pipeline.store import ArtifactStore

    root = str(tmp_path / "artifact-store")

    cold_store = ArtifactStore(root)
    started = time.perf_counter()
    cold = [run_pipeline(name, store=cold_store) for name in BENCHMARKS]
    cold_seconds = time.perf_counter() - started
    assert cold_store.totals()["hit"] == 0

    warm_store = ArtifactStore(root)
    started = time.perf_counter()
    warm = [run_pipeline(name, store=warm_store) for name in BENCHMARKS]
    warm_seconds = time.perf_counter() - started
    traffic = warm_store.totals()
    assert traffic["miss"] == 0, f"warm sweep recomputed stages: {traffic}"
    assert traffic["hit"] >= 5 * len(BENCHMARKS)

    # identical results either way (equations are the full functional
    # content; the hazard verdict must agree claim-for-claim)
    for cold_result, warm_result in zip(cold, warm):
        assert (
            cold_result.implementation.equations()
            == warm_result.implementation.equations()
        )
        assert (
            cold_result.hazard_report.hazard_free
            == warm_result.hazard_report.hazard_free
        )

    _store_measured.update(
        {
            "designs": len(BENCHMARKS),
            "cold_s": round(cold_seconds, 4),
            "warm_s": round(warm_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "warm_traffic": traffic,
        }
    )
    print(
        f"\n[store] Table-1 corpus: cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s "
        f"({cold_seconds / warm_seconds:.1f}x, {traffic['hit']} hits)"
    )


# ----------------------------------------------------------------------
# Circuit composition: compiled-IR BFS vs dict reference (Table-1)
# ----------------------------------------------------------------------

#: total wall time for one composition sweep over every synthesized
#: Table-1 netlist, per-literal dict evaluation (the path before the
#: compiled IR; retained as build_circuit_state_graph_reference).
#: Best/median over 7 interleaved trials of the paired A/B run that
#: accepted the IR on this host. Frozen: do not re-measure.
HAZARD_SIM_PRE_IR_MS = {
    "table1_corpus": {"best": 34.62, "median": 37.04},
}

#: the packed-int BFS times from the *same* paired run as the baseline
#: above (1.58x best / 1.63x median). Frozen alongside it.
HAZARD_SIM_PAIRED_POST_IR_MS = {
    "table1_corpus": {"best": 21.97, "median": 22.76},
}

_hazard_sim_measured = {}


@pytest.fixture(scope="module", autouse=True)
def _record_hazard_sim_json():
    """Merge the hazard-sim A/B measurements into the JSON log."""
    yield
    if not _hazard_sim_measured:
        return
    update_pipeline_json(
        "hazard-sim",
        {
            "pre_ir_baseline_ms": HAZARD_SIM_PRE_IR_MS,
            "paired_post_ir_ms": HAZARD_SIM_PAIRED_POST_IR_MS,
            "measured_ms": _hazard_sim_measured,
        },
        path=_JSON_PATH,
    )


def _table1_composition_pairs():
    """Every Table-1 (netlist, spec) composition input, synthesized once."""
    from repro.bench.suite import BENCHMARKS, run_pipeline

    pairs = []
    for name in BENCHMARKS:
        result = run_pipeline(name)
        pairs.append((result.hazard_report.netlist, result.insertion.sg))
    return pairs


def test_hazard_sim_packed_vs_reference():
    """The packed BFS beats the dict reference and agrees state-for-state."""
    import time

    from repro.netlist.circuit_sg import (
        build_circuit_state_graph,
        build_circuit_state_graph_reference,
    )

    pairs = _table1_composition_pairs()

    # parity first: the benchmark is meaningless if the paths diverge
    for netlist, spec in pairs:
        packed = build_circuit_state_graph(netlist, spec)
        reference = build_circuit_state_graph_reference(netlist, spec)
        assert packed.sg.states == reference.sg.states
        assert sorted(packed.sg.arcs()) == sorted(reference.sg.arcs())
        assert packed.conformance_failures == reference.conformance_failures
        assert packed.rs_violations == reference.rs_violations

    packed_times, reference_times = [], []
    for _ in range(7):
        start = time.perf_counter()
        for netlist, spec in pairs:
            build_circuit_state_graph(netlist, spec)
        packed_times.append((time.perf_counter() - start) * 1000)
        start = time.perf_counter()
        for netlist, spec in pairs:
            build_circuit_state_graph_reference(netlist, spec)
        reference_times.append((time.perf_counter() - start) * 1000)

    packed_times.sort()
    reference_times.sort()
    _hazard_sim_measured["table1_corpus"] = {
        "packed": {
            "best": round(packed_times[0], 2),
            "median": round(packed_times[3], 2),
        },
        "reference": {
            "best": round(reference_times[0], 2),
            "median": round(reference_times[3], 2),
        },
        "speedup_best": round(reference_times[0] / packed_times[0], 2),
    }
    print(
        f"\n[hazard-sim] Table-1 corpus: packed {packed_times[0]:.2f}ms, "
        f"reference {reference_times[0]:.2f}ms "
        f"({reference_times[0] / packed_times[0]:.2f}x)"
    )
