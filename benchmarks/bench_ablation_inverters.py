"""Ablation: separate input inverters (the paper's Section-III caveat).

The paper: "If we consider all these inverters as independent gates the
standard C-implementation will not be speed-independent anymore", but it
is "hazard-free under any distribution of gate delays which obeys
``d_inv^max < D_sn^min``".  Both halves are demonstrated here on the
paper's own Figure-3 implementation:

* under unbounded delays, the explicit-inverter netlist (style
  ``C-INV``) has gate conflicts;
* under the relational bound (inverters orders of magnitude faster than
  any signal network), Monte-Carlo simulation over the same netlist
  finds no withdrawn excitations;
* with deliberately *slow* inverters the race is realised dynamically.
"""

from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import simulate


def _inverter_overrides(netlist, low, high):
    return {n: (low, high) for n in netlist.gates if n.startswith("inv_")}


def test_unbounded_inverters_break_si(fig3, benchmark):
    netlist = netlist_from_implementation(synthesize(fig3), "C-INV")

    def check():
        return verify_speed_independence(netlist, fig3, max_states=200_000)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not report.hazard_free
    print(
        f"\n[inverters/unbounded] HAZARDOUS: {len(report.conflicts)} "
        f"conflicts over {len(report.circuit_sg)} circuit states"
    )


def test_bounded_inverters_are_safe(fig3, benchmark):
    netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
    overrides = _inverter_overrides(netlist, 0.001, 0.01)

    def run_batch():
        return [
            simulate(
                netlist,
                fig3,
                max_events=400,
                seed=seed,
                gate_delay=(1.0, 10.0),
                delay_overrides=overrides,
            )
            for seed in range(20)
        ]

    reports = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert all(r.hazard_free for r in reports)
    print("\n[inverters/bounded] d_inv << D_sn: 20/20 clean runs")


def test_slow_inverters_realise_the_race(fig3, benchmark):
    netlist = netlist_from_implementation(synthesize(fig3), "C-INV")
    overrides = _inverter_overrides(netlist, 50.0, 80.0)

    def run_batch():
        return [
            simulate(
                netlist,
                fig3,
                max_events=400,
                seed=seed,
                gate_delay=(1.0, 5.0),
                input_delay=(1.0, 5.0),
                delay_overrides=overrides,
            )
            for seed in range(20)
        ]

    reports = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    glitchy = [r for r in reports if r.disablings]
    assert glitchy
    print(
        f"\n[inverters/slow] {len(glitchy)}/20 runs with withdrawn "
        f"excitations, e.g. {glitchy[0].disablings[0]}"
    )
