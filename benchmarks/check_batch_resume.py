"""CI gate: interrupted sharded sweeps resume without changing answers.

Simulates the operational story behind ``repro-si batch --resume``:

1. a **cold flat** sweep over the bundled corpus produces the
   determinism baseline manifest (single store, one worker);
2. a **sharded** sweep (``--shards 4``, worker pool) is killed
   mid-batch -- only the NDJSON journal survives, no manifest;
3. the sweep is **resumed** from the journal and must emit a manifest
   byte-identical to the flat baseline, with the completed designs
   skipped on their spec fingerprints;
4. a second resume of the now-complete manifest must skip every design
   and finish at least ``--floor`` times faster than the cold sweep.

The stats sidecar of the resumed run must carry the scheduler counters
(``resume_skips``, ``steals``) and zero-seeded store traffic including
the ``evict`` key.  Exit 0 on success, 1 on any violation.  Usage::

    python benchmarks/check_batch_resume.py [--shards 4] [--jobs 2]
"""

import argparse
import glob
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.pipeline.batch import (  # noqa: E402
    JOURNAL_SUFFIX,
    BatchJournal,
    batch_options,
    run_batch,
)


class Interrupted(Exception):
    """Stand-in for SIGKILL: aborts the sweep mid-batch."""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--kill-after", type=int, default=3,
                        help="designs to complete before the simulated crash")
    parser.add_argument("--floor", type=float, default=5.0,
                        help="minimum full-resume speedup over the cold sweep")
    args = parser.parse_args()

    specs = sorted(glob.glob(os.path.join(REPO, "src/repro/bench/data/*.g")))
    if len(specs) <= args.kill_after:
        print(f"FAIL: corpus of {len(specs)} designs too small to interrupt "
              f"after {args.kill_after}")
        return 1

    failures = []
    with tempfile.TemporaryDirectory() as scratch:
        started = time.perf_counter()
        flat = run_batch(specs, store=os.path.join(scratch, "flat"))
        cold_s = time.perf_counter() - started
        baseline = flat.manifest_text()

        manifest = os.path.join(scratch, "sweep.json")
        store = os.path.join(scratch, "sharded")
        journal = BatchJournal(manifest + JOURNAL_SUFFIX, batch_options())
        completed = []

        def crash_mid_batch(outcome):
            journal.append(outcome)
            completed.append(outcome.name)
            if len(completed) == args.kill_after:
                raise Interrupted()

        try:
            run_batch(specs, store=store, jobs=args.jobs, shards=args.shards,
                      progress=crash_mid_batch)
            failures.append("simulated crash never fired")
        except Interrupted:
            pass
        journal.close()
        if os.path.exists(manifest):
            failures.append("manifest written despite mid-batch crash")

        resumed = run_batch(specs, store=store, jobs=args.jobs,
                            shards=args.shards, resume=manifest)
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write(resumed.manifest_text())

        if resumed.manifest_text() != baseline:
            failures.append("resumed manifest differs from flat baseline")
        stats = resumed.stats()
        skips = stats["scheduler"]["resume_skips"]
        if skips != len(completed):
            failures.append(f"resume skipped {skips} designs, journal "
                            f"recorded {len(completed)}")
        for counter in ("resume_skips", "steals", "affine"):
            if counter not in stats["scheduler"]:
                failures.append(f"scheduler counter {counter!r} missing")
        for event in ("hit", "miss", "evict", "throttle"):
            if event not in stats["store_traffic"]:
                failures.append(f"store_traffic key {event!r} missing")

        started = time.perf_counter()
        full = run_batch(specs, store=store, jobs=args.jobs,
                         shards=args.shards, resume=manifest)
        resumed_s = time.perf_counter() - started
        if full.manifest_text() != baseline:
            failures.append("full-resume manifest differs from baseline")
        if full.stats()["scheduler"]["resume_skips"] != len(specs):
            failures.append("full resume did not skip every design")
        speedup = cold_s / resumed_s if resumed_s > 0 else float("inf")
        if speedup < args.floor:
            failures.append(f"full resume only {speedup:.1f}x faster than "
                            f"cold (floor {args.floor:.0f}x)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {len(specs)} designs, interrupted after {len(completed)}, "
          f"resumed manifest byte-identical to flat baseline; full resume "
          f"{speedup:.0f}x faster than cold ({cold_s * 1000:.0f}ms -> "
          f"{resumed_s * 1000:.1f}ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
