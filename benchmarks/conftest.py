"""Shared fixtures for the benchmark harness."""

import pytest

from repro.bench.figures import figure1_sg, figure3_sg, figure4_sg


@pytest.fixture(scope="session")
def fig1():
    return figure1_sg()


@pytest.fixture(scope="session")
def fig3():
    return figure3_sg()


@pytest.fixture(scope="session")
def fig4():
    return figure4_sg()
