"""CI gate: the DeMorgan oracle vs the derivation path, over one corpus.

Draws one seeded :class:`repro.corpus.CorpusSpec` stream (the same
factory that feeds ``repro-si batch --corpus`` and the service), sweeps
it through the batch machinery for the derivation path's verdicts, then
replays every design through the DeMorgan/Eichelberger ternary oracle
(:mod:`repro.verify.hazard_free`) and cross-checks the two claim for
claim:

* the **batch sweep** synthesises and verifies each design exactly as a
  user sweep would (netlist-level speed-independence check), producing
  the manifest verdicts;
* the **oracle replay** re-derives each design's SOP covers and runs
  the ternary criterion on the literal dicts alone -- no bitengine, no
  compiled IR, no reachability replay;
* any design where both oracles are conclusive but disagree fails the
  gate; each disagreement is additionally handed to the fault engine as
  targeted single-event-upset scenarios
  (:func:`repro.verify.hazard_free.suggest_glitch_injections` feeding
  :func:`repro.verify.faults.glitch_campaign`) so the log shows which
  oracle the circuit-level simulation sides with.

Inconclusive results (blown budgets, corner-cap truncations) are
counted and reported but never treated as disagreement.

Usage::

    PYTHONPATH=src python benchmarks/check_corpus_oracle.py [--count 1000]
                                                            [--seed 2026]
                                                            [--jobs N]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.corpus import CorpusSpec, FamilySpec, corpus_stream  # noqa: E402
from repro.pipeline import Pipeline  # noqa: E402
from repro.pipeline.batch import run_batch  # noqa: E402
from repro.verify.hazard_free import (  # noqa: E402
    cross_check_verdicts,
    demorgan_check,
    suggest_glitch_injections,
)


def gate_spec(count: int, seed: int) -> CorpusSpec:
    """The sweep mix: fast deterministic families, wide parameter spread."""
    return CorpusSpec(
        count=count,
        seed=seed,
        families=(
            FamilySpec("token_ring", weight=2, params={"channels": (2, 6)}),
            FamilySpec("linear_pipeline", weight=2, params={"stages": (2, 6)}),
            FamilySpec("arbiter", weight=2, params={"clients": (2, 4)}),
            FamilySpec("concurrent_fork", params={"branches": (2, 4)}),
            FamilySpec("alternator", params={"ways": (2, 3)}),
        ),
        name_prefix="oracle",
    )


def adjudicate(design, plan, report) -> str:
    """Aim the fault engine at a disagreement's gates -> one summary line."""
    from repro.netlist.netlist import netlist_from_implementation
    from repro.verify.faults import glitch_campaign

    netlist = netlist_from_implementation(plan.implementation, style="C")
    injections = suggest_glitch_injections(netlist, report)
    if not injections:
        return f"  {design.name}: no injectable gates for the claims"
    outcomes = glitch_campaign(
        netlist, plan.sg, runs=len(injections), injections=injections
    )
    detected = sum(1 for o in outcomes if o.detected)
    return (
        f"  {design.name}: fault engine ran {len(injections)} targeted "
        f"SEU(s), {detected} detected as spec violations"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--jobs", type=int, default=max(os.cpu_count() or 1, 1))
    parser.add_argument("--max-states", type=int, default=50_000)
    args = parser.parse_args(argv)

    spec = gate_spec(args.count, args.seed)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as scratch:
        sweep = run_batch(
            corpus=spec,
            store=os.path.join(scratch, "store"),
            jobs=args.jobs,
            max_states=args.max_states,
        )
    sweep_s = time.perf_counter() - started
    verdicts = {}
    for outcome in sweep.outcomes:
        if outcome.status == "error":
            print(
                f"check_corpus_oracle: FAIL: {outcome.name} errored in the "
                f"sweep: {outcome.detail}",
                file=sys.stderr,
            )
            return 1
        verdicts[outcome.name] = (
            None if outcome.status == "inconclusive" else outcome.hazard_free
        )
    print(
        f"sweep: {len(verdicts)} designs in {sweep_s:.1f}s "
        f"(seed {sweep.stats()['seed']}, jobs {args.jobs})"
    )

    started = time.perf_counter()
    pipe = Pipeline()
    agreements = 0
    inconclusive = 0
    disagreements = []
    for design in corpus_stream(spec):
        plan = pipe.run(design.pipeline_spec(verify=False), until="covers")
        report = demorgan_check(plan.implementation)
        si_verdict = verdicts[design.name]
        if si_verdict is None or not report.conclusive:
            inconclusive += 1
            continue
        mismatch = cross_check_verdicts(design.name, report, si_verdict)
        if mismatch is None:
            agreements += 1
        else:
            disagreements.append((mismatch, adjudicate(design, plan, report)))
    oracle_s = time.perf_counter() - started
    print(
        f"demorgan: {agreements} agreement(s), {len(disagreements)} "
        f"disagreement(s), {inconclusive} inconclusive in {oracle_s:.1f}s"
    )

    if disagreements:
        print("check_corpus_oracle: FAIL: the oracles disagree:", file=sys.stderr)
        for mismatch, fault_line in disagreements:
            print(f"  {mismatch}", file=sys.stderr)
            print(fault_line, file=sys.stderr)
        return 1
    if not agreements:
        print(
            "check_corpus_oracle: FAIL: no conclusive cross-checks at all",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_corpus_oracle: PASS: {agreements}/{len(verdicts)} designs "
        f"cross-checked, oracles agree"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
