"""Figure 2: the standard C- and RS-implementation structures.

The figure is architectural (signal networks: AND gates per excitation
region, OR per excitation function, a C-element or RS flip-flop per
non-input signal).  This harness instantiates both structures for the
paper's own MC example (Figure 3) and reports their gate inventories,
and cross-checks that both are speed-independent -- Theorem 3's claim
"both standard RS- and C-implementations are semi-modular".
"""

import pytest

from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation


@pytest.mark.parametrize("style", ["C", "RS"])
def test_structure_instantiation(fig3, style, benchmark):
    impl = synthesize(fig3)
    netlist = benchmark(netlist_from_implementation, impl, style)
    counts = netlist.gate_count()
    print(f"\n[fig2/{style}] gate inventory: {counts}")
    latch_kind = "c" if style == "C" else "rs"
    assert counts[latch_kind] == 2  # c and x; d degenerates to a wire
    assert counts["not"] == 1       # d = x'


@pytest.mark.parametrize("style", ["C", "RS"])
def test_both_structures_speed_independent(fig3, style, benchmark):
    netlist = netlist_from_implementation(synthesize(fig3), style)
    report = benchmark(verify_speed_independence, netlist, fig3)
    assert report.hazard_free
    print(
        f"\n[fig2/{style}] {len(report.circuit_sg)} circuit states, "
        f"{len(report.rs_overlaps)} transient S=R overlaps (held through)"
    )
