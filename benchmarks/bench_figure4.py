"""Figure 4 / Example 2: a persistent SG where the baseline is hazardous.

Regenerates the paper's second example end to end:

* the SG is persistent and satisfies all of the baseline's local
  conditions -- ``Sb = a + c'd`` is accepted;
* yet cube ``a`` covers state ``10*01`` of ER(+b,2), so the AND gate
  ``t = c'd`` can start switching in ER(+b,2) and be overtaken by
  ``a+``: the composed circuit-level state graph has a conflict on
  ``t`` (the hazard the paper describes);
* the MC analysis pinpoints exactly this (ER(+b,1) fails, stuck on the
  ER(+b,2) state), and one inserted signal repairs it -- the repaired
  implementation verifies hazard-free.
"""

from repro.core.baseline import baseline_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.properties import is_persistent


def test_fig4_is_persistent(fig4, benchmark):
    assert benchmark(is_persistent, fig4)


def test_baseline_accepts_the_hazardous_cover(fig4, benchmark):
    impl = benchmark(baseline_synthesize, fig4)
    print("\n[fig4] baseline implementation (t = c'd; b = a + t):")
    print(impl.equations())


def test_baseline_circuit_has_the_paper_hazard(fig4, benchmark):
    impl = baseline_synthesize(fig4)
    netlist = netlist_from_implementation(impl, "C")
    report = benchmark(verify_speed_independence, netlist, fig4)
    assert not report.hazard_free
    assert report.conflicts
    print("\n[fig4] " + report.describe())


def test_mc_detects_the_violation(fig4, benchmark):
    report = benchmark(analyze_mc, fig4)
    failed = {v.er.transition_name for v in report.failed}
    assert failed == {"b+/1"}
    verdict = report.failed[0]
    assert "s1001" in verdict.stuck_states  # the paper's state 10*01
    print("\n[fig4] " + report.describe())


def test_one_signal_removes_the_hazard(fig4, benchmark):
    result = benchmark(insert_state_signals, fig4, max_models=400)
    assert len(result.added_signals) == 1
    impl = synthesize(result.sg)
    netlist = netlist_from_implementation(impl, "C")
    report = verify_speed_independence(netlist, result.sg)
    assert report.hazard_free
    print("\n[fig4] repaired implementation:")
    print(impl.equations())
