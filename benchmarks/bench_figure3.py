"""Figure 3 / Example 1 (MC side): one inserted signal, equations (2).

Two reproductions:

* **verbatim**: the Figure-3 state graph (entered from the paper)
  satisfies the generalised MC requirement; synthesis with gate sharing
  reproduces equations (2) exactly (modulo the polarity of ``x``):
  ``Sx = a'b'c'``, ``Rx = a`` (shared literal), ``d = x'`` (the paper's
  ``d = x`` wire), ``Sc = bd' + ab'x'``, ``Rc = a'bd``;
* **from scratch**: running the insertion engine on Figure 1 finds a
  single-signal repair (the paper: "it is sufficient to add only one
  signal x"), and the result is hazard-free at the gate level.
"""

from repro.boolean.cube import Cube
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation


def test_fig3_satisfies_generalized_mc(fig3, benchmark):
    report = benchmark(analyze_mc, fig3)
    assert report.satisfied
    assert not report.strictly_satisfied  # Sd = x' is a shared cube
    print("\n[fig3] " + report.describe())


def test_equations_2(fig3, benchmark):
    impl = benchmark(synthesize, fig3, share_gates=True)
    print("\n[fig3] MC implementation (paper equations (2)):")
    print(impl.equations())
    assert impl.network("d").wire_source == ("x", 0)
    assert impl.network("x").set_cover.cubes == (
        Cube({"a": 0, "b": 0, "c": 0}),
    )
    assert impl.network("x").reset_cover.cubes == (Cube({"a": 1}),)
    assert len(impl.network("c").set_cover) == 2


def test_insertion_reduces_fig1_with_one_signal(fig1, benchmark):
    result = benchmark(insert_state_signals, fig1, max_models=400)
    assert len(result.added_signals) == 1
    assert result.satisfied
    print(
        f"\n[fig1->fig3] inserted {result.added_signals}; "
        f"{len(fig1)} -> {len(result.sg)} states "
        f"(paper's Figure 3 has 17)"
    )


def test_mc_implementation_is_hazard_free(fig3, benchmark):
    impl = synthesize(fig3, share_gates=True)
    netlist = netlist_from_implementation(impl, "C")
    report = benchmark(verify_speed_independence, netlist, fig3)
    assert report.hazard_free
    print(f"\n[fig3] circuit-level SG: {len(report.circuit_sg)} states, hazard-free")
