"""Host-independent hot-path regression gate for CI.

``BENCH_pipeline.json`` freezes the paired A/B measurement that accepted
the bitmask engine: ``pre_change_baseline_ms`` (the pure dict-based
path, now registered as the ``reference`` analysis backend in
:mod:`repro.pipeline.backends`) against ``paired_post_change_ms`` (the
``bitengine`` backend) on the same host.  Absolute milliseconds are
meaningless across CI runners, but the *ratio* between the two backends
is not: both run on the same interpreter on the same host in the same
process.

The ``hazard-sim`` section freezes the analogous pair for circuit
composition: the compiled-IR packed BFS
(:func:`~repro.netlist.circuit_sg.build_circuit_state_graph`) against
the retained per-literal dict reference
(:func:`~repro.netlist.circuit_sg.build_circuit_state_graph_reference`)
over every synthesized Table-1 netlist.

The ``wordlane`` section freezes the paired (bitengine / wordlane)
``analyze_mc`` ratios of the word-lane analysis backend, measured with
the numpy kernel.  That leg is ratio-gated only when the numpy kernel is
active: on a runner without numpy the backend falls back to the
pure-python kernel, whose contract is identity, not speed, so only the
byte-identity tests gate it there.

The ``incremental`` section (written by ``benchmarks/bench_incremental.py``)
freezes the single-edit warm-vs-cold re-synthesis measurement of the
delta pipeline.  Like ``service`` it is gated on an absolute floor
(``--incremental-floor``, default 5x) over the recorded long-tail
designs (nowick/berkel3): the warm path rides the reachability replay
plus the content-addressed artifact chain, so anything under the floor
means delta re-synthesis stopped reusing.

The ``service`` section (written by ``benchmarks/bench_service.py``)
freezes the resident job server's cold-single-shot over warm-p50 win.
Unlike the paired sections it is gated on an *absolute* floor
(``--service-floor``, default 10x) rather than a frozen ratio: the warm
path is hundreds of times faster than the cold one, so a generous
absolute floor separates "the shared store/memo stopped serving" from
scheduler noise on a loaded CI runner.

This script re-measures both paths of each pair on the current host and
fails (exit 1) when a measured advantage falls more than ``--factor``
(default 1.25, i.e. 25%) below its frozen ratio -- the fast path got
relatively slower, which is exactly what a hot-path regression looks
like regardless of how fast the runner is.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--factor 1.25]
                                                         [--rounds 5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict

from repro.corpus import concurrent_fork, token_ring
from repro.pipeline.backends import get_backend
from repro.stg.reachability import stg_to_state_graph

CASES = {
    "concurrent_fork(5)": lambda: concurrent_fork(5),
    "token_ring(12)": lambda: token_ring(12),
}

_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_pipeline.json",
)


@dataclass(frozen=True)
class FrozenBaseline:
    """The accepted A/B measurement, as a typed structured artifact."""

    #: case -> best-of-N milliseconds of the reference (dict-based) path
    reference_ms: Dict[str, float]
    #: case -> best-of-N milliseconds of the bitengine path
    engine_ms: Dict[str, float]

    @property
    def ratios(self) -> Dict[str, float]:
        """Per-case frozen (reference / engine) speed ratios."""
        return {
            case: self.reference_ms[case] / self.engine_ms[case]
            for case in self.reference_ms
            if case in self.engine_ms
        }

    @classmethod
    def from_json(cls, document: dict) -> "FrozenBaseline":
        hotpath = document["hotpath"]
        return cls(
            reference_ms={
                case: row["best"]
                for case, row in hotpath["pre_change_baseline_ms"].items()
            },
            engine_ms={
                case: row["best"]
                for case, row in hotpath["paired_post_change_ms"].items()
            },
        )


def frozen_ratios(path: str = _JSON_PATH) -> dict:
    """Per-case frozen (reference / engine) ratios from the pipeline log."""
    with open(path) as handle:
        document = json.load(handle)
    return FrozenBaseline.from_json(document).ratios


def frozen_hazard_sim_ratios(path: str = _JSON_PATH) -> dict:
    """Frozen (dict reference / packed BFS) composition ratios."""
    with open(path) as handle:
        document = json.load(handle)
    section = document["hazard-sim"]
    return FrozenBaseline(
        reference_ms={
            case: row["best"]
            for case, row in section["pre_ir_baseline_ms"].items()
        },
        engine_ms={
            case: row["best"]
            for case, row in section["paired_post_ir_ms"].items()
        },
    ).ratios


def measure_hazard_sim_ratio(rounds: int = 5) -> tuple:
    """Best-of-N corpus sweep times for the packed and dict BFS paths."""
    from repro.bench.suite import BENCHMARKS, run_pipeline
    from repro.netlist.circuit_sg import (
        build_circuit_state_graph,
        build_circuit_state_graph_reference,
    )

    pairs = []
    for name in BENCHMARKS:
        result = run_pipeline(name)
        pairs.append((result.hazard_report.netlist, result.insertion.sg))
    packed_times, reference_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        for netlist, spec in pairs:
            build_circuit_state_graph(netlist, spec)
        packed_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for netlist, spec in pairs:
            build_circuit_state_graph_reference(netlist, spec)
        reference_times.append(time.perf_counter() - start)
    return min(packed_times) * 1000, min(reference_times) * 1000


def frozen_wordlane_ratios(path: str = _JSON_PATH) -> dict:
    """Frozen (bitengine / wordlane) analyze_mc ratios (numpy kernel)."""
    with open(path) as handle:
        document = json.load(handle)
    section = document["wordlane"]
    return FrozenBaseline(
        reference_ms={
            case: row["best"]
            for case, row in section["paired_bitengine_ms"].items()
        },
        engine_ms={
            case: row["best"]
            for case, row in section["paired_wordlane_ms"].items()
        },
    ).ratios


def measure_wordlane_ratio(case: str, rounds: int = 5) -> tuple:
    """Best-of-N wall times for the wordlane and bitengine backends."""
    stg = CASES[case]()
    wordlane, bitengine = get_backend("wordlane"), get_backend("bitengine")
    wordlane_times, bitengine_times = [], []
    for _ in range(rounds):
        sg = stg_to_state_graph(stg)
        start = time.perf_counter()
        wordlane.analyze_mc(sg)
        wordlane_times.append(time.perf_counter() - start)
        sg = stg_to_state_graph(stg)  # fresh: both backends start cold
        start = time.perf_counter()
        bitengine.analyze_mc(sg)
        bitengine_times.append(time.perf_counter() - start)
    return min(wordlane_times) * 1000, min(bitengine_times) * 1000


def incremental_section(path: str = _JSON_PATH) -> dict:
    """The ``incremental`` single-edit record ({} when never measured)."""
    with open(path) as handle:
        document = json.load(handle)
    section = document.get("incremental")
    return section if isinstance(section, dict) else {}


def check_incremental(section: dict, floor: float) -> tuple:
    """Gate the recorded long-tail single-edit speedups -> (ok, messages).

    The speedup is recomputed from the recorded latencies (not trusted
    from the rounded field); every design named in ``long_tail`` must
    clear the absolute floor.
    """
    designs = section.get("long_tail") or []
    edits = section.get("edits") or {}
    if not designs:
        return False, ["incremental: no long_tail designs recorded"]
    ok, messages = True, []
    for name in designs:
        row = edits.get(name)
        try:
            cold_ms = float(row["cold_ms"])
            warm_ms = float(row["warm_ms"])
        except (KeyError, TypeError, ValueError):
            return False, [f"incremental/{name}: malformed record"]
        if warm_ms <= 0:
            return False, [f"incremental/{name}: non-positive warm ({warm_ms}ms)"]
        speedup = cold_ms / warm_ms
        verdict = "ok" if speedup >= floor else "REGRESSED"
        messages.append(
            f"incremental/{name}: cold {cold_ms:.1f}ms, warm {warm_ms:.2f}ms "
            f"-> {speedup:.0f}x single-edit speedup (floor {floor:.0f}x): "
            f"{verdict}"
        )
        if speedup < floor:
            ok = False
    return ok, messages


def service_section(path: str = _JSON_PATH) -> dict:
    """The ``service`` load-test record ({} when never measured)."""
    with open(path) as handle:
        document = json.load(handle)
    section = document.get("service")
    return section if isinstance(section, dict) else {}


def batch_section(path: str = _JSON_PATH) -> dict:
    """The ``batch`` cold-vs-resumed record ({} when never measured)."""
    with open(path) as handle:
        document = json.load(handle)
    section = document.get("batch")
    return section if isinstance(section, dict) else {}


def corpus_section(path: str = _JSON_PATH) -> dict:
    """The ``corpus`` factory-throughput record ({} when never measured)."""
    with open(path) as handle:
        document = json.load(handle)
    section = document.get("corpus")
    return section if isinstance(section, dict) else {}


def check_corpus(section: dict, floor: float) -> tuple:
    """Gate one recorded corpus measurement -> (ok, message).

    Throughput is recomputed from the recorded wall-clock and admitted
    count (not trusted from the rounded field) and must clear the
    absolute floor; the bench also records stream determinism and the
    full admission ledger, and a recording where the stream was not
    deterministic or the counters do not add up fails outright.
    """
    try:
        seconds = float(section["seconds"])
        admitted = int(section["admitted"])
        candidates = int(section["candidates"])
        rejected = int(section["rejected"])
    except (KeyError, TypeError, ValueError):
        return False, "corpus: malformed section (missing counters)"
    if seconds <= 0:
        return False, f"corpus: non-positive wall-clock ({seconds}s)"
    if not section.get("deterministic", False):
        return False, "corpus: recorded stream was not deterministic"
    if candidates != admitted + rejected:
        return False, (
            f"corpus: admission ledger does not add up "
            f"({candidates} candidates != {admitted} admitted "
            f"+ {rejected} rejected)"
        )
    designs_per_s = admitted / seconds
    verdict = "ok" if designs_per_s >= floor else "REGRESSED"
    message = (
        f"corpus: {admitted} designs in {seconds * 1000:.0f}ms "
        f"-> {designs_per_s:.0f} designs/s with the admission bar on "
        f"(floor {floor:.0f}/s): {verdict}"
    )
    return designs_per_s >= floor, message


def check_batch(section: dict, floor: float) -> tuple:
    """Gate one recorded batch measurement -> (ok, message).

    The resumed speedup is recomputed from the recorded wall-clocks
    (not trusted from the rounded field) and must clear the absolute
    floor; the bench also records whether every design resume-skipped
    and whether the three manifests were byte-identical, and a
    recording that says otherwise fails outright.
    """
    try:
        cold_ms = float(section["cold_ms"])
        resumed_ms = float(section["resumed_ms"])
    except (KeyError, TypeError, ValueError):
        return False, "batch: malformed section (missing wall-clocks)"
    if resumed_ms <= 0:
        return False, f"batch: non-positive resumed time ({resumed_ms}ms)"
    if not section.get("manifests_identical", False):
        return False, "batch: recorded manifests were not byte-identical"
    if section.get("resume_skips") != section.get("designs"):
        return False, (
            f"batch: only {section.get('resume_skips')}/"
            f"{section.get('designs')} designs resume-skipped"
        )
    speedup = cold_ms / resumed_ms
    verdict = "ok" if speedup >= floor else "REGRESSED"
    message = (
        f"batch: cold {cold_ms:.0f}ms, resumed {resumed_ms:.1f}ms over "
        f"{section.get('designs', '?')} designs / "
        f"{section.get('shards', '?')} shards -> {speedup:.0f}x resumed "
        f"speedup (floor {floor:.0f}x): {verdict}"
    )
    return speedup >= floor, message


def check_service(section: dict, floor: float) -> tuple:
    """Gate one recorded service measurement -> (ok, message).

    ``warm_speedup`` is recomputed from the recorded latencies (not
    trusted from the rounded field) and must clear the absolute floor.
    """
    try:
        cold_ms = float(section["cold_ms"])
        warm_p50_ms = float(section["warm_p50_ms"])
    except (KeyError, TypeError, ValueError):
        return False, "service: malformed section (missing latencies)"
    if warm_p50_ms <= 0:
        return False, f"service: non-positive warm p50 ({warm_p50_ms}ms)"
    speedup = cold_ms / warm_p50_ms
    verdict = "ok" if speedup >= floor else "REGRESSED"
    message = (
        f"service/{section.get('design', '?')}: cold {cold_ms:.1f}ms, "
        f"warm p50 {warm_p50_ms:.1f}ms -> {speedup:.1f}x warm speedup "
        f"(floor {floor:.0f}x): {verdict}"
    )
    return speedup >= floor, message


def measure_ratio(case: str, rounds: int = 5) -> tuple:
    """Best-of-N wall times for both backends on a fresh graph per round."""
    stg = CASES[case]()
    engine, reference = get_backend("bitengine"), get_backend("reference")
    engine_times, reference_times = [], []
    for _ in range(rounds):
        sg = stg_to_state_graph(stg)
        start = time.perf_counter()
        engine.analyze_mc(sg)
        engine_times.append(time.perf_counter() - start)
        sg = stg_to_state_graph(stg)  # fresh: both backends start cold
        start = time.perf_counter()
        reference.analyze_mc(sg)
        reference_times.append(time.perf_counter() - start)
    return min(engine_times) * 1000, min(reference_times) * 1000


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor", type=float, default=1.25,
        help="tolerated relative slowdown of the engine vs the frozen "
        "ratio (default 1.25 = fail beyond 25%%)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="measurement rounds per case (best-of, default 5)",
    )
    parser.add_argument(
        "--json", default=_JSON_PATH,
        help="path to BENCH_pipeline.json (default: repo root)",
    )
    parser.add_argument(
        "--service-floor", type=float, default=10.0,
        help="minimum recorded warm speedup of the job server "
        "(default 10.0; the section is skipped when absent)",
    )
    parser.add_argument(
        "--incremental-floor", type=float, default=5.0,
        help="minimum recorded single-edit warm speedup on the long-tail "
        "designs (default 5.0; the section is skipped when absent)",
    )
    parser.add_argument(
        "--batch-floor", type=float, default=5.0,
        help="minimum recorded resumed-vs-cold batch speedup "
        "(default 5.0; the section is skipped when absent)",
    )
    parser.add_argument(
        "--corpus-floor", type=float, default=25.0,
        help="minimum recorded corpus-factory throughput in designs/s "
        "(default 25.0; the section is skipped when absent)",
    )
    parser.add_argument(
        "--sections",
        default="hotpath,hazard-sim,wordlane,service,incremental,batch,corpus",
        help="comma-separated subset of gates to run (default: all); "
        "e.g. --sections service against a fresh bench_service output",
    )
    args = parser.parse_args(argv)
    sections = {name.strip() for name in args.sections.split(",") if name}
    unknown = sections - {
        "hotpath", "hazard-sim", "wordlane", "service", "incremental",
        "batch", "corpus",
    }
    if unknown:
        print(
            f"check_regression: unknown section(s) {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2

    failed = []
    if "hotpath" not in sections:
        frozen = {}
    else:
        try:
            frozen = frozen_ratios(args.json)
        except (OSError, KeyError, ValueError) as exc:
            print(f"check_regression: cannot load frozen baseline: {exc}",
                  file=sys.stderr)
            return 2
    for case in sorted(CASES) if "hotpath" in sections else ():
        if case not in frozen:
            print(f"{case}: no frozen baseline, skipped")
            continue
        engine_ms, reference_ms = measure_ratio(case, rounds=args.rounds)
        measured = reference_ms / engine_ms
        floor = frozen[case] / args.factor
        verdict = "ok" if measured >= floor else "REGRESSED"
        print(
            f"{case}: engine {engine_ms:.2f}ms, reference {reference_ms:.2f}ms "
            f"-> {measured:.2f}x (frozen {frozen[case]:.2f}x, "
            f"floor {floor:.2f}x): {verdict}"
        )
        if measured < floor:
            failed.append(case)

    frozen_hazard = {}
    if "hazard-sim" in sections:
        try:
            frozen_hazard = frozen_hazard_sim_ratios(args.json)
        except (OSError, KeyError, ValueError):
            print("hazard-sim: no frozen baseline, skipped")
    if "table1_corpus" in frozen_hazard:
        packed_ms, reference_ms = measure_hazard_sim_ratio(rounds=args.rounds)
        measured = reference_ms / packed_ms
        frozen_ratio = frozen_hazard["table1_corpus"]
        floor = frozen_ratio / args.factor
        verdict = "ok" if measured >= floor else "REGRESSED"
        print(
            f"hazard-sim/table1_corpus: packed {packed_ms:.2f}ms, "
            f"reference {reference_ms:.2f}ms "
            f"-> {measured:.2f}x (frozen {frozen_ratio:.2f}x, "
            f"floor {floor:.2f}x): {verdict}"
        )
        if measured < floor:
            failed.append("hazard-sim/table1_corpus")

    frozen_lane = {}
    if "wordlane" in sections:
        try:
            frozen_lane = frozen_wordlane_ratios(args.json)
        except (OSError, KeyError, ValueError):
            print("wordlane: no frozen baseline, skipped")
    if frozen_lane:
        from repro.sg import lanes

        kernel = lanes.get_kernel()
        if kernel.name != "numpy":
            # the frozen pair was measured with the numpy kernel; the
            # pure-python fallback trades the speedup for dependency
            # freedom, so only output identity (tests) gates it here
            print(
                "wordlane: python fallback kernel active, "
                "ratio gate skipped (frozen pair is numpy-kernel)"
            )
        else:
            for case in sorted(CASES):
                if case not in frozen_lane:
                    print(f"wordlane/{case}: no frozen baseline, skipped")
                    continue
                lane_ms, engine_ms = measure_wordlane_ratio(
                    case, rounds=args.rounds
                )
                measured = engine_ms / lane_ms
                floor = frozen_lane[case] / args.factor
                verdict = "ok" if measured >= floor else "REGRESSED"
                print(
                    f"wordlane/{case}: wordlane {lane_ms:.2f}ms, "
                    f"bitengine {engine_ms:.2f}ms "
                    f"-> {measured:.2f}x (frozen {frozen_lane[case]:.2f}x, "
                    f"floor {floor:.2f}x): {verdict}"
                )
                if measured < floor:
                    failed.append(f"wordlane/{case}")

    incremental = {}
    if "incremental" in sections:
        try:
            incremental = incremental_section(args.json)
        except (OSError, ValueError):
            pass
    if incremental:
        ok, messages = check_incremental(incremental, args.incremental_floor)
        for message in messages:
            print(message)
        if not ok:
            failed.append("incremental")
    elif "incremental" in sections:
        print("incremental: no recorded measurement, skipped")

    service = {}
    if "service" in sections:
        try:
            service = service_section(args.json)
        except (OSError, ValueError):
            pass
    if service:
        ok, message = check_service(service, args.service_floor)
        print(message)
        if not ok:
            failed.append("service")
    elif "service" in sections:
        print("service: no recorded measurement, skipped")

    batch = {}
    if "batch" in sections:
        try:
            batch = batch_section(args.json)
        except (OSError, ValueError):
            pass
    if batch:
        ok, message = check_batch(batch, args.batch_floor)
        print(message)
        if not ok:
            failed.append("batch")
    elif "batch" in sections:
        print("batch: no recorded measurement, skipped")

    corpus = {}
    if "corpus" in sections:
        try:
            corpus = corpus_section(args.json)
        except (OSError, ValueError):
            pass
    if corpus:
        ok, message = check_corpus(corpus, args.corpus_floor)
        print(message)
        if not ok:
            failed.append("corpus")
    elif "corpus" in sections:
        print("corpus: no recorded measurement, skipped")

    if failed:
        print(
            f"check_regression: hot path regressed on {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
