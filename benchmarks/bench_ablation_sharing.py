"""Ablation: Section-VI gate sharing and latch-decomposition styles.

Not a table in the paper, but the design choices its text calls out:

* **Gate sharing** (generalised MC, Theorem 5): compare AND-gate and
  literal counts with and without sharing on the paper's Figure 3 and on
  the benchmark suite -- sharing should never increase cost and pays off
  whenever one cube can serve several regions (``Rx = a`` in eqs. (2)).
* **Latch decomposition**: the paper models the RS flip-flop as a basic
  element.  Decomposing it into two independently-delayed cross-coupled
  NOR gates (style ``RS-NOR``) exceeds the model's assumptions and
  exhibits rail races -- quantified here as the hazard verdict flip.
"""

import pytest

from repro.bench.suite import run_pipeline
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation


def test_sharing_on_fig3(fig3, benchmark):
    shared = benchmark(synthesize, fig3, share_gates=True)
    plain = synthesize(fig3)
    assert shared.and_gate_count() <= plain.and_gate_count()
    assert shared.literal_count() <= plain.literal_count()
    print(
        f"\n[sharing/fig3] AND gates {plain.and_gate_count()} -> "
        f"{shared.and_gate_count()}, literals {plain.literal_count()} -> "
        f"{shared.literal_count()}"
    )


@pytest.mark.parametrize("name", ["delement", "berkel2", "luciano"])
def test_sharing_on_benchmarks(name, benchmark):
    result = run_pipeline(name, verify=False)
    sg = result.insertion.sg

    def both():
        return synthesize(sg), synthesize(sg, share_gates=True)

    plain, shared = benchmark(both)
    assert shared.literal_count() <= plain.literal_count()
    print(
        f"\n[sharing/{name}] literals {plain.literal_count()} -> "
        f"{shared.literal_count()}"
    )


def test_latch_decomposition_ablation(fig3, benchmark):
    impl = synthesize(fig3)
    atomic = netlist_from_implementation(impl, "RS")
    discrete = netlist_from_implementation(impl, "RS-NOR")

    def verify_both():
        return (
            verify_speed_independence(atomic, fig3),
            verify_speed_independence(discrete, fig3),
        )

    atomic_report, discrete_report = benchmark(verify_both)
    assert atomic_report.hazard_free
    assert not discrete_report.hazard_free
    print(
        f"\n[latch ablation] atomic RS: hazard-free "
        f"({len(atomic_report.circuit_sg)} states); discrete NOR pair: "
        f"{len(discrete_report.conflicts)} rail conflicts "
        f"({len(discrete_report.circuit_sg)} states)"
    )
