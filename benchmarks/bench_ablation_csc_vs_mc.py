"""Ablation: the price of basic gates (CSC repair vs MC repair).

The paper's Theorem 4 (MC => CSC) in insertion form: repairing a
specification for the complex-gate flow (CSC only) can never need more
state signals than repairing it for the basic-gate flow (MC).  Figure 1
is the sharp case -- CSC already holds (0 signals) while MC costs one.
On the Table-1 suite every violation happens to be CSC-driven, so the
two costs coincide; both flows verify hazard-free at their own level of
gate atomicity.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.csc import insert_for_csc
from repro.core.insertion import insert_state_signals
from repro.netlist.hazards import verify_speed_independence
from repro.stg.reachability import stg_to_state_graph

_FAST = ["delement", "berkel2", "luciano", "nowick", "nak-pa", "mp-forward-pkt"]


def test_fig1_price_of_basic_gates(fig1, benchmark):
    def both():
        return (
            len(insert_for_csc(fig1).added_signals),
            len(insert_state_signals(fig1, max_models=400).added_signals),
        )

    csc_count, mc_count = benchmark.pedantic(both, rounds=1, iterations=1)
    assert (csc_count, mc_count) == (0, 1)
    print(f"\n[csc-vs-mc] fig1: CSC repair {csc_count} signal(s), "
          f"MC repair {mc_count} signal(s)")


@pytest.mark.parametrize("name", _FAST)
def test_suite_csc_repair(name, benchmark):
    sg = stg_to_state_graph(load_benchmark(name))

    result = benchmark.pedantic(insert_for_csc, args=(sg,), rounds=1, iterations=1)
    assert result.satisfied
    impl = complex_gate_synthesize(result.sg)
    netlist = complex_gate_netlist(impl)
    report = verify_speed_independence(netlist, result.sg)
    assert report.hazard_free
    mc_count = len(insert_state_signals(sg, max_models=400).added_signals)
    assert len(result.added_signals) <= mc_count
    print(
        f"\n[csc-vs-mc] {name}: CSC {len(result.added_signals)} vs MC "
        f"{mc_count} signal(s); complex-gate circuit hazard-free"
    )
