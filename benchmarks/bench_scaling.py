"""Scaling study (extension; not a table in the paper).

The paper reports only that its examples finish "within a 5 minutes
timeout on a DEC 5000" and that large speed-ups are possible.  This
harness charts how the pipeline's phases scale on three parameterised
specification families:

* sequential growth (``token_ring``): linear state count;
* concurrency growth (``concurrent_fork``): exponential state count --
  the classic state-explosion stress for region analysis;
* insertion difficulty (``alternator``): the number of state signals
  grows logarithmically while the SAT search space grows quickly.
"""

import pytest

from repro.bench.generators import alternator, concurrent_fork, token_ring
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.stg.reachability import stg_to_state_graph


@pytest.mark.parametrize("n", [2, 4, 8, 12])
def test_token_ring_analysis(n, benchmark):
    sg = stg_to_state_graph(token_ring(n))
    report = benchmark(analyze_mc, sg)
    assert report.satisfied
    print(f"\n[scaling] token_ring({n}): {len(sg)} states, MC clean")


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_concurrent_fork_analysis(n, benchmark):
    sg = stg_to_state_graph(concurrent_fork(n))
    report = benchmark(analyze_mc, sg)
    assert report.satisfied
    print(f"\n[scaling] concurrent_fork({n}): {len(sg)} states, MC clean")


@pytest.mark.parametrize("n", [3, 5])
def test_concurrent_fork_reachability(n, benchmark):
    stg = concurrent_fork(n)
    sg = benchmark(stg_to_state_graph, stg)
    assert len(sg) > 2 ** n  # the concurrency diamond dominates


@pytest.mark.parametrize("n", [2, 3])
def test_alternator_insertion(n, benchmark):
    sg = stg_to_state_graph(alternator(n))
    result = benchmark.pedantic(
        insert_state_signals,
        args=(sg,),
        kwargs={"max_models": 400},
        rounds=1,
        iterations=1,
    )
    expected = 1 if n == 2 else 2
    assert len(result.added_signals) == expected
    print(
        f"\n[scaling] alternator({n}): {len(sg)} states, "
        f"{len(result.added_signals)} signals inserted"
    )
