"""Scaling study (extension; not a table in the paper).

The paper reports only that its examples finish "within a 5 minutes
timeout on a DEC 5000" and that large speed-ups are possible.  This
harness charts how the pipeline's phases scale on three parameterised
specification families:

* sequential growth (``token_ring``): linear state count;
* concurrency growth (``concurrent_fork``): exponential state count --
  the classic state-explosion stress for region analysis;
* insertion difficulty (``alternator``): the number of state signals
  grows logarithmically while the SAT search space grows quickly.
"""

import os

import pytest

from repro.corpus import alternator, concurrent_fork, token_ring
from repro.bench.suite import update_pipeline_json
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.stg.reachability import stg_to_state_graph

_measured = {}

_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_pipeline.json",
)


@pytest.fixture(scope="module", autouse=True)
def _record_scaling_json():
    """Merge the module's timings into BENCH_pipeline.json on teardown."""
    yield
    if not _measured:
        return
    update_pipeline_json("scaling", _measured, path=_JSON_PATH)


def _record(benchmark, case, states):
    stats = benchmark.stats.stats
    _measured[case] = {
        "states": states,
        "best_ms": stats.min * 1000,
        "median_ms": stats.median * 1000,
    }


@pytest.mark.parametrize("n", [2, 4, 8, 12])
def test_token_ring_analysis(n, benchmark):
    sg = stg_to_state_graph(token_ring(n))
    report = benchmark(analyze_mc, sg)
    assert report.satisfied
    _record(benchmark, f"analyze_mc/token_ring({n})", len(sg))
    print(f"\n[scaling] token_ring({n}): {len(sg)} states, MC clean")


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_concurrent_fork_analysis(n, benchmark):
    sg = stg_to_state_graph(concurrent_fork(n))
    report = benchmark(analyze_mc, sg)
    assert report.satisfied
    _record(benchmark, f"analyze_mc/concurrent_fork({n})", len(sg))
    print(f"\n[scaling] concurrent_fork({n}): {len(sg)} states, MC clean")


@pytest.mark.parametrize("n", [3, 5])
def test_concurrent_fork_reachability(n, benchmark):
    stg = concurrent_fork(n)
    sg = benchmark(stg_to_state_graph, stg)
    assert len(sg) > 2 ** n  # the concurrency diamond dominates


@pytest.mark.parametrize("n", [2, 3])
def test_alternator_insertion(n, benchmark):
    sg = stg_to_state_graph(alternator(n))
    result = benchmark.pedantic(
        insert_state_signals,
        args=(sg,),
        kwargs={"max_models": 400},
        rounds=1,
        iterations=1,
    )
    expected = 1 if n == 2 else 2
    assert len(result.added_signals) == expected
    print(
        f"\n[scaling] alternator({n}): {len(sg)} states, "
        f"{len(result.added_signals)} signals inserted"
    )
