"""Figure 1 / Example 1 (baseline side): equations (1).

Regenerates the paper's analysis of the running example:

* ER(+d_1) admits no single correct cover cube -- two cubes are needed
  (the paper prints them as ``ab`` and ``bc``; with overbars restored,
  ``a + b'c`` / ``ab' + b'c`` -- any minimal pair);
* the full Beerel-style implementation, equations (1):
  ``Sd = <2 cubes>; Rd = a'b'c'; Sc = a + bd'; Rc = a'bd``;
* the MC analysis verdict: ER(+d_1) (and the isolated ER(+d_2)) violate
  the Monotonous Cover requirement, everything else satisfies it.

The pytest-benchmark timings measure the region analysis and the
baseline synthesis on the 14-state graph.
"""

from repro.boolean.cube import Cube
from repro.core.baseline import baseline_synthesize
from repro.core.covers import find_correct_cover_cubes, find_monotonous_cover
from repro.core.mc import analyze_mc
from repro.sg.regions import excitation_regions


def er_of(sg, signal, direction, index=1):
    for er in excitation_regions(sg, signal):
        if er.direction == direction and er.index == index:
            return er
    raise AssertionError


def test_er_d1_needs_two_cubes(fig1, benchmark):
    er = er_of(fig1, "d", +1, 1)
    cubes = benchmark(find_correct_cover_cubes, fig1, er)
    assert len(cubes) == 2
    print("\n[fig1] correct cover of ER(+d1):", cubes)


def test_er_d1_has_no_monotonous_cover(fig1, benchmark):
    er = er_of(fig1, "d", +1, 1)
    result = benchmark(find_monotonous_cover, fig1, er)
    assert result is None


def test_equations_1(fig1, benchmark):
    impl = benchmark(baseline_synthesize, fig1)
    print("\n[fig1] Beerel-style implementation (paper equations (1)):")
    print(impl.equations())
    d = impl.network("d")
    assert len(d.set_cover) == 2
    assert d.reset_cover.cubes == (Cube({"a": 0, "b": 0, "c": 0}),)
    c = impl.network("c")
    assert Cube({"a": 1}) in c.set_cover.cubes
    assert Cube({"b": 1, "d": 0}) in c.set_cover.cubes


def test_mc_analysis_verdict(fig1, benchmark):
    report = benchmark(analyze_mc, fig1)
    assert not report.satisfied
    assert {v.er.transition_name for v in report.failed} == {"d+/1", "d+/2"}
    print("\n[fig1] " + report.describe())
