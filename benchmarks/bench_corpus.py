"""Corpus factory throughput: seeded generation with the admission bar on.

Drains one :class:`repro.corpus.CorpusSpec` stream over the fast
deterministic families (token rings, linear pipelines, arbiters,
concurrent forks, alternators) and records what the factory did:

* **designs/s** -- admitted designs per second of wall-clock, with the
  structural admission bar (consistency, free choice, bounded
  live-and-safe exploration) running on every candidate;
* **admission counters** -- candidates tried, designs admitted, and the
  per-reason rejection histogram, so a drifting admission bar (e.g. a
  family builder starting to emit structurally bad nets) shows up in
  the trajectory even when throughput stays healthy.

Determinism is asserted on every measurement: the stream is drained
twice and the fingerprint sequences must match exactly.  The record
lands in the ``corpus`` section of ``BENCH_pipeline.json``, gated by
``check_regression.py --sections corpus``.

Usage::

    PYTHONPATH=src python benchmarks/bench_corpus.py [--count 300] [--seed 7]
                                                     [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.bench.suite import update_pipeline_json  # noqa: E402
from repro.corpus import (  # noqa: E402
    CorpusSpec,
    CorpusStats,
    FamilySpec,
    corpus_stream,
)


def bench_spec(count: int, seed: int) -> CorpusSpec:
    """The measured mix: every fast deterministic family."""
    return CorpusSpec(
        count=count,
        seed=seed,
        families=(
            FamilySpec("token_ring", params={"channels": (2, 6)}),
            FamilySpec("linear_pipeline", params={"stages": (2, 6)}),
            FamilySpec("arbiter", params={"clients": (2, 4)}),
            FamilySpec("concurrent_fork", params={"branches": (2, 4)}),
            FamilySpec("alternator", params={"ways": (2, 3)}),
        ),
        name_prefix="bench",
    )


def drain(spec: CorpusSpec):
    """One timed drain -> (seconds, fingerprints, stats)."""
    stats = CorpusStats()
    started = time.perf_counter()
    fingerprints = [design.fingerprint for design in corpus_stream(spec, stats)]
    return time.perf_counter() - started, fingerprints, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=300)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="trajectory file to merge the 'corpus' section into",
    )
    args = parser.parse_args(argv)

    spec = bench_spec(args.count, args.seed)
    seconds, fingerprints, stats = drain(spec)
    recheck_seconds, recheck, _ = drain(spec)
    if fingerprints != recheck:
        print("bench_corpus: FAIL: stream is not deterministic", file=sys.stderr)
        return 1
    seconds = min(seconds, recheck_seconds)

    designs_per_s = stats.admitted / seconds if seconds > 0 else 0.0
    payload = {
        "count": args.count,
        "seed": args.seed,
        "seconds": round(seconds, 4),
        "designs_per_s": round(designs_per_s, 1),
        "deterministic": True,
        **stats.to_json(),
    }
    print(
        f"corpus: {stats.admitted} designs in {seconds * 1000:.0f}ms "
        f"-> {designs_per_s:.0f} designs/s "
        f"({stats.candidates} candidates, {stats.rejected} rejected: "
        f"{payload['rejections']})"
    )
    out = update_pipeline_json("corpus", payload, path=args.out)
    print(f"bench_corpus: wrote 'corpus' section to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
