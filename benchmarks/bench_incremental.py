"""Single-edit re-synthesis latency: warm (delta) vs cold (from scratch).

For each Table-1 design this measures the paired cost of applying one
:class:`~repro.pipeline.delta.SpecDelta` — a signal retype that keeps
the design synthesisable — through ``Pipeline.run(spec, delta=...)``
against a warmed context, versus a cold from-scratch synthesis of the
edited spec.  Byte-identity of the two netlist artifacts is asserted on
every measurement: a speedup obtained by computing something different
would be meaningless.

The paper's long-tail designs (``nowick``/``berkel3``, dominated by the
generalized state-assignment search) are where incremental re-synthesis
pays: the edit leaves the reached state graph content-identical, so the
reachability replay plus the content-addressed artifact chain turn a
~1s cold synthesis into a ~1ms warm one.

Results land in the ``incremental`` section of ``BENCH_pipeline.json``
(see :func:`repro.bench.suite.update_pipeline_json`) and are gated by
``check_regression.py --sections incremental``.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--rounds 3]
                                                          [--names nowick,berkel3]
                                                          [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.suite import BENCHMARKS, load_benchmark, update_pipeline_json
from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec

#: the designs whose cold synthesis dominates table1 wall time; these
#: are the ones check_regression gates on the speedup floor
LONG_TAIL = ("nowick", "berkel3")


def single_edit(stg) -> str:
    """A graph-preserving edit: retype the sort-order-last output.

    Retyping the alphabetically last output to internal keeps the
    partition-grouped signal order (inputs, outputs, internal — each
    sorted) unchanged, so the edit changes the interface contract but
    not the reached state graph's content.  That is the interactive
    sweet spot the delta path exists for; structural edits (edge
    add/drop) change the state space and honestly pay for the dirty
    recomputation downstream.
    """
    return f"retype {sorted(stg.outputs)[-1]} internal"


def measure_design(name: str, rounds: int = 3) -> dict:
    """Best-of-N paired (cold, warm) single-edit measurement."""
    stg = load_benchmark(name)
    edit = single_edit(stg)
    cold_best = warm_best = float("inf")
    for _ in range(rounds):
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_stg(stg, name=name)
        pipeline.run(spec)  # warm the snapshot + artifact chain (untimed)

        start = time.perf_counter()
        warm_artifact = pipeline.run(spec, delta=edit)
        warm_best = min(warm_best, time.perf_counter() - start)

        edited = spec.apply_delta(edit)
        start = time.perf_counter()
        cold_artifact = Pipeline(AnalysisContext()).run(edited)
        cold_best = min(cold_best, time.perf_counter() - start)

        if warm_artifact.fingerprint != cold_artifact.fingerprint:
            raise AssertionError(
                f"{name}: warm delta artifact diverged from cold "
                f"({warm_artifact.fingerprint[:12]} != "
                f"{cold_artifact.fingerprint[:12]})"
            )
    return {
        "edit": edit,
        "cold_ms": round(cold_best * 1000, 3),
        "warm_ms": round(warm_best * 1000, 3),
        "speedup": round(cold_best / warm_best, 1),
        "rounds": rounds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="measurement rounds per design (best-of, default 3)",
    )
    parser.add_argument(
        "--names", default=None,
        help="comma-separated designs (default: the full Table-1 suite)",
    )
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="trajectory file to merge the 'incremental' section into",
    )
    args = parser.parse_args(argv)
    names = (
        [n.strip() for n in args.names.split(",") if n.strip()]
        if args.names
        else list(BENCHMARKS)
    )
    unknown = sorted(set(names) - set(BENCHMARKS))
    if unknown:
        print(f"bench_incremental: unknown design(s) {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    edits = {}
    header = f"{'design':<16}{'cold[ms]':>10}{'warm[ms]':>10}{'speedup':>9}  edit"
    print(header)
    print("-" * len(header))
    for name in names:
        row = measure_design(name, rounds=args.rounds)
        edits[name] = row
        print(
            f"{name:<16}{row['cold_ms']:>10.1f}{row['warm_ms']:>10.2f}"
            f"{row['speedup']:>8.0f}x  {row['edit']}"
        )

    payload = {
        "edits": edits,
        "long_tail": [name for name in LONG_TAIL if name in edits],
    }
    path = update_pipeline_json("incremental", payload, args.out)
    print(f"\nwrote section 'incremental' to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
