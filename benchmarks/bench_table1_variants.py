"""Table 1 variants: RS latches and exact gate sharing across the suite.

The paper's table reports the C-implementation flow; Theorem 3 covers
the RS structure equally and Section VI promises sharing never hurts.
This harness re-runs the whole Table-1 suite with

* the RS-flip-flop structure (atomic latch), and
* exact Section-VI sharing (``share_gates="optimal"``),

asserting gate-level hazard freedom and cost monotonicity design by
design.
"""

import pytest

from repro.bench.suite import run_pipeline
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation

_FAST = ["delement", "berkel2", "luciano", "mp-forward-pkt", "nak-pa", "nowick"]
_ALL = _FAST + ["duplicator", "ganesh8", "berkel3"]


@pytest.mark.parametrize("name", _ALL)
def test_rs_structure(name, benchmark):
    result = run_pipeline(name, verify=False)
    sg = result.insertion.sg
    netlist = netlist_from_implementation(result.implementation, "RS")

    report = benchmark(verify_speed_independence, netlist, sg)
    assert report.hazard_free, report.describe()
    print(
        f"\n[table1/RS] {name}: hazard-free, {len(report.circuit_sg)} "
        f"circuit states, {len(report.rs_overlaps)} transient S=R overlaps"
    )


@pytest.mark.parametrize("name", _FAST)
def test_optimal_sharing(name, benchmark):
    result = run_pipeline(name, verify=False)
    sg = result.insertion.sg
    plain = synthesize(sg)

    optimal = benchmark(synthesize, sg, share_gates="optimal")
    assert optimal.literal_count() <= plain.literal_count()
    netlist = netlist_from_implementation(optimal, "C")
    assert verify_speed_independence(netlist, sg).hazard_free
    print(
        f"\n[table1/share] {name}: literals {plain.literal_count()} -> "
        f"{optimal.literal_count()}, AND gates {plain.and_gate_count()} -> "
        f"{optimal.and_gate_count()}"
    )
